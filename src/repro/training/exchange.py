"""Gradient exchanges: synchronous baselines and partial collectives.

A *gradient exchange* turns each rank's local gradient vector into the
globally combined gradient used by the optimizer.  Three implementations
cover the systems compared in the paper's evaluation:

* :class:`SingleProcessExchange` — no communication (P = 1 baseline runs);
* :class:`SynchronousExchange` — synch-SGD.  Two styles are modelled:
  ``"deep500"`` executes the per-bucket allreduces in a fixed order
  (control dependencies in the DAG, Fig. 5), while ``"horovod"`` first
  runs a small negotiation round (achieving consensus on which tensors are
  ready, as Horovod's coordinator does) and then reduces the buckets in
  the negotiated order;
* :class:`PartialExchange` — eager-SGD's exchange over solo / majority /
  quorum allreduce, including the stale-gradient accumulation semantics
  (handled inside :class:`repro.collectives.partial.PartialAllreduce`).

A fourth, :class:`ShardedExchange` (``sharding="zero1"``), changes the
contract: instead of returning a combined gradient it *applies the
optimizer update itself* over a reduce-scatter → shard-local update →
parameter-allgather pipeline, keeping each rank's optimizer state at
1/P of the dense footprint (ZeRO stage 1).  Callers detect this via
:attr:`GradientExchange.updates_parameters` and use
:meth:`ShardedExchange.exchange_update`.

Fusion buffers and pipelining
-----------------------------
Both multi-rank exchanges are *bucketed*: a
:class:`~repro.training.bucketing.GradientBucketer` packs the flat
gradient into fusion buffers and one collective is issued per bucket, so
the exchange is a pipeline of bounded-size reductions instead of one
monolithic blocking call.  The knobs (threaded through
:class:`~repro.training.config.TrainingConfig` and the CLI):

``fusion_threshold_bytes``
    Capacity of one fusion buffer; ``None`` keeps the legacy behaviour
    (``fusion_buckets`` fixed-count ranges, default 1 = fully fused).
``pipeline_chunks``
    Number of segments each synchronous collective round is split into so
    reduction of chunk *k* overlaps transmission of chunk *k + 1* (see
    :mod:`repro.collectives.sync`).
``plan``
    A :class:`~repro.tuning.autotune.TunedPlan` produced by the
    calibrated auto-tuner; supplies both knobs at once (explicit knob
    arguments are then ignored).

Per-bucket wait times are reported in
:attr:`ExchangeResult.bucket_waits` and surface in
:class:`~repro.training.distributed_sgd.StepStats`.

Multi-host topologies
---------------------
When the transport exposes a multi-host
:class:`~repro.collectives.topology.HostTopology` (the ``hier`` backend's
``comm.router.host_topology``), the synchronous exchange routes every
bucket through the two-tier schedules of :mod:`repro.collectives.sync`:
dense buckets via :func:`~repro.collectives.sync.allreduce_hierarchical`
and reduce-closed compressed buckets via
:func:`~repro.collectives.sync.allreduce_compressed_hierarchical`, so
only one rank per host (its leader) ever touches an inter-host link.  On
a single-host topology the configured flat ``algorithm`` runs unchanged.

Gradient compression
--------------------
Both multi-rank exchanges accept a ``compression`` codec
(:mod:`repro.compression`): each fusion bucket is encoded before it
enters the collective and decoded after the reduction, with per-bucket
error-feedback residuals handled by
:class:`~repro.compression.BucketCompressor`.  Two wire paths exist:

*encode-before-send / decode-after-reduce*
    Reduce-closed codecs (``fp16``): the synchronous exchange runs the
    compressed ring of
    :func:`repro.collectives.sync.allreduce_compressed_ring` — encoded
    payloads on every wire hop, dense ``float64`` arithmetic at every
    combine (NumPy's narrow-dtype kernels are scalar loops, so reducing
    *in* fp16 would burn the byte savings on arithmetic).  The
    configured ``algorithm`` applies to the *uncompressed* path only;
    compressed reduce-closed buckets always use the ring schedule, and
    the simtime cost model mirrors exactly that.  (The partial exchange
    instead runs its background collective natively at the encoded
    width — see :class:`PartialExchange`.)
*decode-reduce-encode*
    Codecs whose payloads cannot be summed elementwise (``bf16``,
    ``int8``, ``topk``): a combining collective would have to decode,
    reduce densely and re-encode at every hop.  The synchronous exchange
    collapses that to a single allgather of encoded payloads followed by
    one dense local reduction — the wire still carries the compact
    encoding.  The partial collectives' background reduction operates on
    a persistent dense buffer, so the partial exchange applies such
    codecs as a local quantize-and-compensate transform (the
    perturbation and error feedback are faithful, the background wire
    stays dense — reported as such in :attr:`ExchangeResult.wire_bytes`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.comm.communicator import Communicator
from repro.collectives.partial import PartialAllreduce, PartialMode, make_partial_allreduce
from repro.collectives.sharding import (
    ALLGATHER_FOR_REDUCE_SCATTER,
    allgather_flat,
    reduce_scatter,
)
from repro.collectives.sync import (
    allgather,
    allreduce,
    allreduce_compressed_hierarchical,
    allreduce_compressed_ring,
    resolve_host_topology,
)
from repro.compression import BucketCompressor, GradientCodec, resolve_codec
from repro.nn.parameters import assign_flat_parameters, flatten_parameters
from repro.obs import recorder as _obs
from repro.training.bucketing import GradientBucketer
from repro.tuning.autotune import TunedPlan

#: Type accepted by the ``compression`` parameter of the exchanges.
CompressionSpec = Union[str, GradientCodec, None]


@dataclass(frozen=True)
class ExchangeResult:
    """Outcome of one gradient exchange on one rank."""

    #: The combined (averaged) gradient to apply locally.  ``None`` for
    #: parameter-updating exchanges (:class:`ShardedExchange`): a ZeRO-1
    #: rank only ever holds its owned gradient shard fully reduced, and
    #: the update has already been applied to the model when the result
    #: is returned.
    gradient: Optional[np.ndarray]
    #: Whether this rank's freshly computed gradient was part of the
    #: combination (always true for synchronous exchanges; for bucketed
    #: partial exchanges: whether it was part of *every* bucket's round).
    included: bool
    #: Number of ranks that contributed fresh gradients (minimum across
    #: buckets for bucketed partial exchanges).
    num_active: int
    #: Seconds spent inside the exchange call (synchronisation wait).
    wait_time: float
    #: Seconds spent waiting on each fusion bucket's collective, in
    #: bucket-index order (empty for single-process exchanges).
    bucket_waits: Tuple[float, ...] = ()
    #: Payload bytes this rank put on the wire per collective round
    #: (sum over buckets of the encoded size; the dense size when the
    #: exchange is uncompressed, 0 for single-process exchanges).
    wire_bytes: int = 0


class GradientExchange:
    """Base class for gradient exchanges."""

    name = "base"
    #: Whether :meth:`exchange_update` replaces the exchange → assign →
    #: ``optimizer.step()`` pipeline (ZeRO-style exchanges update the
    #: model parameters in place; the trainer must then skip its own
    #: optimizer step).
    updates_parameters = False

    def exchange(self, flat_gradient: np.ndarray) -> ExchangeResult:
        raise NotImplementedError

    def close(self) -> None:
        """Release any background resources (progress threads)."""

    def __enter__(self) -> "GradientExchange":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SingleProcessExchange(GradientExchange):
    """Identity exchange for single-process runs."""

    name = "single"

    def exchange(self, flat_gradient: np.ndarray) -> ExchangeResult:
        return ExchangeResult(
            gradient=np.asarray(flat_gradient, dtype=np.float64),
            included=True,
            num_active=1,
            wait_time=0.0,
        )


def _resolve_bucketer(
    num_parameters: int,
    bucketer: Optional[GradientBucketer],
    fusion_threshold_bytes: Optional[int],
    fusion_buckets: int,
    codec: Optional[GradientCodec] = None,
) -> GradientBucketer:
    """Pick the bucketing plan from the three configuration knobs.

    With a codec, the byte threshold budgets the *encoded* payload size
    (the fusion buffer is a wire buffer), so compressing codecs pack
    more elements per bucket.
    """
    if bucketer is not None:
        if bucketer.num_elements != num_parameters:
            raise ValueError(
                f"bucketer covers {bucketer.num_elements} elements, "
                f"gradient has {num_parameters}"
            )
        return bucketer
    wire_bpe = None if codec is None else codec.wire_bytes_per_element
    if fusion_threshold_bytes is not None:
        return GradientBucketer.from_flat(
            num_parameters, fusion_threshold_bytes, wire_bytes_per_element=wire_bpe
        )
    return GradientBucketer.fixed_count(
        num_parameters, fusion_buckets, wire_bytes_per_element=wire_bpe
    )


def _apply_plan(
    plan: Optional[TunedPlan],
    comm: Communicator,
    fusion_threshold_bytes: Optional[int],
    pipeline_chunks: int,
) -> Tuple[Optional[int], int]:
    """Resolve the fusion knobs from an auto-tuned plan, when one is given."""
    if plan is None:
        return fusion_threshold_bytes, pipeline_chunks
    if plan.world_size != comm.size:
        raise ValueError(
            f"tuned plan was computed for world size {plan.world_size}, "
            f"communicator has {comm.size} ranks"
        )
    return plan.fusion_threshold_bytes, plan.pipeline_chunks


class SynchronousExchange(GradientExchange):
    """Synchronous bucketed allreduce of the gradient (synch-SGD).

    Parameters
    ----------
    comm:
        Application-channel communicator of this rank.
    style:
        ``"deep500"`` or ``"horovod"`` (see module docstring).
    algorithm:
        Allreduce algorithm (recursive doubling / ring / Rabenseifner).
    fusion_buckets:
        Legacy knob: number of fixed-count buckets the gradient is split
        into.  ``1`` models a fully fused allreduce.  Ignored when
        ``fusion_threshold_bytes`` or ``bucketer`` is given.
    fusion_threshold_bytes:
        Pack the gradient into fusion buffers of at most this many bytes
        (Horovod-style tensor fusion).
    pipeline_chunks:
        Segments per collective round (chunked-pipeline allreduce).
    bucketer:
        Explicit bucketing plan (e.g. built from per-parameter sizes via
        :meth:`GradientBucketer.from_model`); overrides the other knobs.
    plan:
        Auto-tuned :class:`~repro.tuning.autotune.TunedPlan`; supplies
        ``fusion_threshold_bytes`` and ``pipeline_chunks`` (an explicit
        ``bucketer`` still wins for the bucketing itself).
    compression:
        Gradient codec name / spec / instance (see
        :mod:`repro.compression` and the module docstring's wire-path
        discussion).  ``None`` or ``"none"`` exchanges dense ``float64``.
    compression_options:
        Extra codec options merged over any inline spec options.
    """

    def __init__(
        self,
        comm: Communicator,
        style: str = "deep500",
        algorithm: str = "recursive_doubling",
        fusion_buckets: int = 1,
        fusion_threshold_bytes: Optional[int] = None,
        pipeline_chunks: int = 1,
        bucketer: Optional[GradientBucketer] = None,
        plan: Optional[TunedPlan] = None,
        compression: CompressionSpec = None,
        compression_options: Optional[Dict] = None,
    ) -> None:
        if style not in ("deep500", "horovod"):
            raise ValueError(f"unknown synchronous style {style!r}")
        if fusion_buckets < 1:
            raise ValueError(f"fusion_buckets must be >= 1, got {fusion_buckets}")
        fusion_threshold_bytes, pipeline_chunks = _apply_plan(
            plan, comm, fusion_threshold_bytes, pipeline_chunks
        )
        if pipeline_chunks < 1:
            raise ValueError(f"pipeline_chunks must be >= 1, got {pipeline_chunks}")
        self.comm = comm
        self.style = style
        self.algorithm = algorithm
        #: The transport's rank -> host map (single-host unless the
        #: ``hier`` backend exposes a multi-host ``host_topology``).  On a
        #: multi-host fabric every bucket is routed through the two-tier
        #: schedules so non-leader traffic stays off inter-host links;
        #: the configured ``algorithm`` then applies within a host tier
        #: only in the degenerate single-host case.
        self.host_topology = resolve_host_topology(comm)
        self.fusion_buckets = fusion_buckets
        self.fusion_threshold_bytes = fusion_threshold_bytes
        self.pipeline_chunks = pipeline_chunks
        self.codec = resolve_codec(compression, compression_options)
        self._compressor = None if self.codec is None else BucketCompressor(self.codec)
        self.name = f"sync-{style}"
        self._bucketer = bucketer
        self._step = 0
        #: Persistent fusion buffers, reused across steps so each
        #: exchange pays a copy into warm pages instead of fresh
        #: allocations (and their page faults) per bucket.
        self._pack_buffers: Optional[List[np.ndarray]] = None

    def _ensure_bucketer(self, num_parameters: int) -> GradientBucketer:
        if self._bucketer is None:
            self._bucketer = _resolve_bucketer(
                num_parameters, None, self.fusion_threshold_bytes,
                self.fusion_buckets, codec=self.codec,
            )
        elif self._bucketer.num_elements != num_parameters:
            raise ValueError(
                f"flat gradient has {num_parameters} elements but the "
                f"exchange's bucketer covers {self._bucketer.num_elements}"
            )
        return self._bucketer

    def _negotiated_order(self, num_buckets: int) -> List[int]:
        """Horovod-style negotiation: consensus on the bucket issue order.

        Each rank's backward pass finishes its buckets in a slightly
        different order (modelled as a per-rank, per-step permutation);
        the coordinator admits a tensor for reduction only once *all*
        ranks report it ready.  The negotiated position of a bucket is
        therefore the maximum of its per-rank readiness positions; every
        rank computes the same order from the same allgathered tokens.
        """
        rng = np.random.default_rng((self._step, self.comm.rank))
        local_order = [int(b) for b in rng.permutation(num_buckets)]
        tokens = allgather(self.comm, ("ready", self._step, tuple(local_order)))
        positions = [0] * num_buckets
        for _kind, _step, order in tokens:
            for pos, bucket in enumerate(order):
                positions[bucket] = max(positions[bucket], pos)
        return sorted(range(num_buckets), key=lambda b: (positions[b], b))

    def exchange(self, flat_gradient: np.ndarray) -> ExchangeResult:
        start = time.perf_counter()
        flat = np.asarray(flat_gradient, dtype=np.float64)
        bucketer = self._ensure_bucketer(flat.size)
        with _obs.span("bucket-pack", "exchange", nbytes=flat.nbytes,
                       buckets=bucketer.num_buckets):
            buffers = bucketer.pack(flat, out=self._pack_buffers)
        self._pack_buffers = buffers
        if self.style == "horovod":
            order = self._negotiated_order(bucketer.num_buckets)
        else:
            # deep500: control dependencies fix the issue order (Fig. 5).
            order = list(range(bucketer.num_buckets))
        bucket_waits = [0.0] * bucketer.num_buckets
        wire_bytes = 0
        for b in order:
            bucket_start = time.perf_counter()
            if buffers[b].size:
                with _obs.span("bucket-wait", "exchange", bucket=b,
                               nbytes=buffers[b].nbytes):
                    buffers[b], sent = self._reduce_bucket(b, buffers[b])
                wire_bytes += sent
            bucket_waits[b] = time.perf_counter() - bucket_start
        self._step += 1
        gradient = bucketer.unpack(buffers)
        return ExchangeResult(
            gradient=gradient,
            included=True,
            num_active=self.comm.size,
            wait_time=time.perf_counter() - start,
            bucket_waits=tuple(bucket_waits),
            wire_bytes=wire_bytes,
        )

    def _reduce_bucket(self, b: int, buffer: np.ndarray) -> Tuple[np.ndarray, int]:
        """Combine one fusion buffer across ranks; returns (result, wire bytes).

        Uncompressed and reduce-closed codecs ride the configured
        allreduce (encode before send, decode after reduce); other
        codecs take the decode-reduce-encode path — one allgather of
        encoded payloads, then a dense local average (see the module
        docstring).
        """
        multi_host = not self.host_topology.is_single_host
        if self._compressor is None:
            result = allreduce(
                self.comm,
                buffer,
                algorithm="hierarchical" if multi_host else self.algorithm,
                average=True,
                n_chunks=self.pipeline_chunks,
                # The packed fusion buffer is owned by this exchange;
                # reducing it in place skips a full-size copy per bucket.
                copy=False,
            )
            return result, buffer.nbytes
        if self.codec.reduce_closed:
            # Compressed ring: encoded wire hops, dense float64 arithmetic
            # (see allreduce_compressed_ring).  NumPy's narrow-dtype
            # kernels are scalar loops, so reducing *in* the encoded
            # dtype would burn the wire-byte savings on arithmetic.
            dense = self._compressor.compensate_bucket(b, buffer)
            wire_nbytes = self.codec.wire_bytes(buffer.size)
            self._compressor.bytes_encoded += wire_nbytes
            # On a multi-host fabric only the leader ring carries the
            # encoded payload; the intra-host hops stay dense (shm rings
            # move float64 faster than a codec round-trip).
            compressed_ring = (
                allreduce_compressed_hierarchical if multi_host
                else allreduce_compressed_ring
            )
            result = compressed_ring(
                self.comm,
                dense,
                self.codec,
                average=True,
                n_chunks=self.pipeline_chunks,
                # The packed fusion buffer (or the freshly allocated
                # compensated copy) is owned by this call.
                copy=False,
            )
            return result, wire_nbytes
        encoded = self._compressor.encode_bucket(b, buffer)
        gathered = allgather(self.comm, encoded.payload)
        acc = np.zeros(buffer.size, dtype=np.float64)
        for payload in gathered:
            acc += self.codec.decode(encoded.with_payload(payload))
        acc /= self.comm.size
        return acc, encoded.nbytes


def _payload_nbytes(data) -> int:
    """Bytes of the array payload(s) in one send (0 for scalars/metadata)."""
    nbytes = getattr(data, "nbytes", None)
    if isinstance(nbytes, int):
        return nbytes
    if isinstance(data, tuple):
        return sum(_payload_nbytes(item) for item in data)
    return 0


class _WireCountingComm:
    """Pass-through communicator proxy counting the bytes this rank sends.

    The sharded exchange reports *measured* update-path wire bytes — the
    reduce-scatter and parameter-allgather hops this rank actually put
    on the wire — instead of an analytic payload size, so the accounting
    stays honest across algorithms, codecs and topologies without
    teaching every collective to count.
    """

    def __init__(self, comm: Communicator) -> None:
        self._comm = comm
        self.bytes_sent = 0

    def __getattr__(self, name):
        return getattr(self._comm, name)

    def send(self, data, dest: int, tag: int = 0) -> None:
        self.bytes_sent += _payload_nbytes(data)
        self._comm.send(data, dest, tag=tag)


#: Sharded (reduce-scatter) algorithm run for each configured allreduce
#: algorithm.  Recursive doubling has no reduce-scatter half (every rank
#: accumulates the full vector), so it maps to the bandwidth-optimal ring.
_SHARDED_ALGORITHM_FOR_ALLREDUCE = {
    "recursive_doubling": "ring",
    "ring": "ring",
    "rabenseifner": "halving",
    "hierarchical": "hierarchical",
}


class ShardedExchange(GradientExchange):
    """ZeRO stage-1 exchange: scatter gradients, update a shard, gather params.

    Instead of allreducing the gradient and redundantly running the full
    optimizer update on every rank, each fusion bucket is reduce-scattered
    (:func:`repro.collectives.sharding.reduce_scatter`) so each rank holds
    one contiguous 1/P window fully reduced; the optimizer applies the
    update — and lazily allocates momentum / moment state — for the owned
    windows only (:meth:`repro.nn.optim.Optimizer.step_windows`); and an
    allgather of the updated **parameters**
    (:func:`~repro.collectives.sharding.allgather_flat`) restores the
    replicated model.  Optimizer memory drops P-fold; the ring wire cost
    stays at the ring allreduce's bandwidth-optimal volume (and well below
    the default recursive-doubling exchange's), with the redundant P-1
    optimizer applications gone from the critical path.

    With the ring algorithm the pipeline is *bit-identical* to dense
    ``allreduce(algorithm="ring", average=True)`` + a full optimizer
    step: the reduce-scatter is the allreduce's own first phase, and the
    update rules are elementwise.  The bitwise-equivalence test in
    ``tests/test_sharded_training.py`` holds this to word-for-word
    equality.

    Parameters mirror :class:`SynchronousExchange` where they overlap.
    ``algorithm`` is a sharded-collective name (``"ring"``, ``"halving"``,
    ``"hierarchical"``); on a multi-host topology every bucket is routed
    through the hierarchical schedule, as in the dense exchange.
    ``compression`` accepts reduce-closed codecs only (the wire hop must
    carry one encoded element per dense element) and rides the ring
    schedule; note the *parameter* gather is then lossy-encoded too.
    """

    updates_parameters = True

    def __init__(
        self,
        comm: Communicator,
        algorithm: str = "ring",
        fusion_buckets: int = 1,
        fusion_threshold_bytes: Optional[int] = None,
        pipeline_chunks: int = 1,
        bucketer: Optional[GradientBucketer] = None,
        plan: Optional[TunedPlan] = None,
        compression: CompressionSpec = None,
        compression_options: Optional[Dict] = None,
    ) -> None:
        if fusion_buckets < 1:
            raise ValueError(f"fusion_buckets must be >= 1, got {fusion_buckets}")
        fusion_threshold_bytes, pipeline_chunks = _apply_plan(
            plan, comm, fusion_threshold_bytes, pipeline_chunks
        )
        if pipeline_chunks < 1:
            raise ValueError(f"pipeline_chunks must be >= 1, got {pipeline_chunks}")
        self._inner_comm = comm
        self.comm = _WireCountingComm(comm)
        self.host_topology = resolve_host_topology(comm)
        if not self.host_topology.is_single_host:
            # Multi-host fabrics route every bucket through the two-tier
            # schedule so non-leader traffic stays off inter-host links.
            algorithm = "hierarchical"
        if algorithm not in ALLGATHER_FOR_REDUCE_SCATTER:
            raise ValueError(
                f"unknown sharded exchange algorithm {algorithm!r}; "
                f"available: {sorted(ALLGATHER_FOR_REDUCE_SCATTER)}"
            )
        self.algorithm = algorithm
        self.codec = resolve_codec(compression, compression_options)
        if self.codec is not None:
            if not self.codec.reduce_closed:
                raise ValueError(
                    f"sharded exchange supports reduce-closed codecs only "
                    f"(fixed-width wire, e.g. fp16); {self.codec.name!r} needs "
                    f"the decode-reduce-encode allgather of the dense exchange"
                )
            if algorithm != "ring":
                raise ValueError(
                    f"compressed sharded exchange rides the ring schedule "
                    f"only, got algorithm {algorithm!r}"
                )
        self.fusion_buckets = fusion_buckets
        self.fusion_threshold_bytes = fusion_threshold_bytes
        self.pipeline_chunks = pipeline_chunks
        self.name = "sync-zero1"
        self._bucketer = bucketer
        self._step = 0
        self._pack_buffers: Optional[List[np.ndarray]] = None
        self._param_buffers: Optional[List[np.ndarray]] = None
        self._windows: Optional[List[List[Tuple[int, int]]]] = None

    def _ensure_bucketer(self, num_parameters: int) -> GradientBucketer:
        if self._bucketer is None:
            self._bucketer = _resolve_bucketer(
                num_parameters, None, self.fusion_threshold_bytes,
                self.fusion_buckets, codec=self.codec,
            )
        elif self._bucketer.num_elements != num_parameters:
            raise ValueError(
                f"flat gradient has {num_parameters} elements but the "
                f"exchange's bucketer covers {self._bucketer.num_elements}"
            )
        return self._bucketer

    def _ensure_windows(self, bucketer: GradientBucketer) -> List[List[Tuple[int, int]]]:
        if self._windows is None:
            self._windows = bucketer.shard_windows(
                self._inner_comm.size,
                self.algorithm,
                topology=self.host_topology
                if self.algorithm == "hierarchical" else None,
            )
        return self._windows

    def exchange(self, flat_gradient: np.ndarray) -> ExchangeResult:
        raise RuntimeError(
            "ShardedExchange applies the optimizer update itself; call "
            "exchange_update(flat_gradient, model, optimizer) instead"
        )

    def exchange_update(self, flat_gradient: np.ndarray, model, optimizer) -> ExchangeResult:
        """Reduce-scatter, update the owned shard, allgather the parameters.

        One data-parallel step's whole update path: on return the model's
        parameters hold the post-step values on every rank (the trainer
        must not run ``optimizer.step()`` again).  ``optimizer`` state is
        allocated for the owned windows only.
        """
        start = time.perf_counter()
        flat = np.asarray(flat_gradient, dtype=np.float64)
        bucketer = self._ensure_bucketer(flat.size)
        windows = self._ensure_windows(bucketer)
        rank = self._inner_comm.rank
        sent_before = self.comm.bytes_sent
        topology = (
            self.host_topology if self.algorithm == "hierarchical" else None
        )
        with _obs.span("bucket-pack", "exchange", nbytes=flat.nbytes,
                       buckets=bucketer.num_buckets):
            buffers = bucketer.pack(flat, out=self._pack_buffers)
        self._pack_buffers = buffers
        flat_params = flatten_parameters(model)
        if flat_params.size != flat.size:
            raise ValueError(
                f"model has {flat_params.size} parameters but the flat "
                f"gradient has {flat.size} elements"
            )
        with _obs.span("param-pack", "exchange", nbytes=flat_params.nbytes):
            params = bucketer.pack(flat_params, out=self._param_buffers)
        self._param_buffers = params

        bucket_waits = [0.0] * bucketer.num_buckets
        for b in range(bucketer.num_buckets):
            bucket_start = time.perf_counter()
            if buffers[b].size:
                with _obs.span("shard-scatter", "exchange", bucket=b,
                               nbytes=buffers[b].nbytes):
                    buffers[b], _window = reduce_scatter(
                        self.comm,
                        buffers[b],
                        average=True,
                        algorithm=self.algorithm,
                        n_chunks=self.pipeline_chunks,
                        # The packed fusion buffer is owned by this
                        # exchange; reduce it in place.
                        copy=False,
                        codec=self.codec,
                        topology=topology,
                    )
            bucket_waits[b] = time.perf_counter() - bucket_start

        param_views: List[np.ndarray] = []
        grad_views: List[np.ndarray] = []
        keys: List[str] = []
        for b, bucket in enumerate(bucketer.buckets):
            lo, hi = windows[b][rank]
            if hi > lo:
                param_views.append(params[b][lo:hi])
                grad_views.append(buffers[b][lo:hi])
                # Global flat coordinates: stable across steps and across
                # re-bucketing-free restarts, so per-window optimizer
                # state survives checkpoint round-trips.
                keys.append(f"{bucket.start + lo}:{bucket.start + hi}")
        with _obs.span("shard-update", "exchange", windows=len(keys)):
            # Every rank calls step_windows — also with zero owned windows
            # (e.g. the fold's extra ranks under "halving") — so the step
            # counter, and with it the LR schedule, stays rank-aligned.
            optimizer.step_windows(param_views, grad_views, keys)

        ag_algorithm = ALLGATHER_FOR_REDUCE_SCATTER[self.algorithm]
        for b in range(bucketer.num_buckets):
            bucket_start = time.perf_counter()
            if params[b].size:
                with _obs.span("shard-gather", "exchange", bucket=b,
                               nbytes=params[b].nbytes):
                    allgather_flat(
                        self.comm,
                        params[b],
                        algorithm=ag_algorithm,
                        n_chunks=self.pipeline_chunks,
                        codec=self.codec,
                        topology=topology,
                    )
            bucket_waits[b] += time.perf_counter() - bucket_start
        with _obs.span("param-unpack", "exchange", nbytes=flat_params.nbytes):
            assign_flat_parameters(model, bucketer.unpack(params))

        self._step += 1
        return ExchangeResult(
            gradient=None,
            included=True,
            num_active=self._inner_comm.size,
            wait_time=time.perf_counter() - start,
            bucket_waits=tuple(bucket_waits),
            wire_bytes=self.comm.bytes_sent - sent_before,
        )


class PartialExchange(GradientExchange):
    """Eager-SGD exchange over per-bucket partial allreduces.

    Parameters
    ----------
    comm:
        Any communicator of this rank (each bucket's partial allreduce
        derives its own library/activation channels from it).
    num_parameters:
        Length of the flat gradient vector.
    mode:
        ``"solo"``, ``"majority"`` or ``"quorum"``.
    quorum:
        Arrivals required in quorum mode.
    seed:
        Shared seed for the initiator designation (must match on all
        ranks; all buckets share the seed, so each round's designated
        initiator is the same across buckets).
    fusion_threshold_bytes:
        Pack the gradient into fusion buffers of at most this many bytes;
        each bucket runs its own partial allreduce (with its own progress
        thread and channel pair), so a slow rank's gradient can be
        included in bucket *i* but become stale for bucket *j* — the
        per-bucket generalisation of the paper's staleness semantics.
        Stale gradients accumulate per bucket and are never lost.
    pipeline_chunks:
        Segments the background reduction of every bucket is pipelined in
        (sum/avg payloads only; see
        :class:`~repro.collectives.partial.PartialAllreduce`).
    bucketer:
        Explicit bucketing plan; overrides ``fusion_threshold_bytes``.
    plan:
        Auto-tuned :class:`~repro.tuning.autotune.TunedPlan`; supplies
        ``fusion_threshold_bytes`` and ``pipeline_chunks``.
    compression:
        Gradient codec (see :mod:`repro.compression`).  Reduce-closed
        codecs (``fp16``) run the whole partial collective — send
        buffer, stale accumulation and background reduction — at the
        encoded width, so the wire genuinely shrinks.  Non-reduce-closed
        codecs (``bf16``/``int8``/``topk``) are applied as a local
        quantize-and-compensate transform before the dense background
        reduction (the documented decode-reduce-encode caveat: the
        persistent-schedule wire stays dense).
    compression_options:
        Extra codec options merged over any inline spec options.
    """

    def __init__(
        self,
        comm: Communicator,
        num_parameters: int,
        mode: str = "solo",
        quorum: Optional[int] = None,
        seed: int = 12345,
        overwrite_recvbuff: bool = True,
        fusion_threshold_bytes: Optional[int] = None,
        pipeline_chunks: int = 1,
        bucketer: Optional[GradientBucketer] = None,
        plan: Optional[TunedPlan] = None,
        compression: CompressionSpec = None,
        compression_options: Optional[Dict] = None,
    ) -> None:
        if num_parameters < 1:
            raise ValueError(f"num_parameters must be >= 1, got {num_parameters}")
        fusion_threshold_bytes, pipeline_chunks = _apply_plan(
            plan, comm, fusion_threshold_bytes, pipeline_chunks
        )
        self.codec = resolve_codec(compression, compression_options)
        self._compressor = None if self.codec is None else BucketCompressor(self.codec)
        self.bucketer = _resolve_bucketer(
            num_parameters, bucketer, fusion_threshold_bytes, fusion_buckets=1,
            codec=self.codec,
        )
        kwargs = {}
        if PartialMode(mode) is PartialMode.QUORUM:
            kwargs["quorum"] = quorum
        if self.codec is not None and self.codec.reduce_closed:
            # The collective itself runs at the encoded width.
            kwargs["dtype"] = self.codec.wire_dtype
        self.partials: List[PartialAllreduce] = []
        multi = self.bucketer.num_buckets > 1
        for bucket in self.bucketer.buckets:
            self.partials.append(
                make_partial_allreduce(
                    comm,
                    (bucket.num_elements,),
                    mode,
                    average=True,
                    seed=seed,
                    overwrite_recvbuff=overwrite_recvbuff,
                    channel_suffix=f".bucket{bucket.index}" if multi else "",
                    n_chunks=pipeline_chunks,
                    **kwargs,
                )
            )
        self.name = f"eager-{PartialMode(mode).value}"

    @property
    def partial(self) -> PartialAllreduce:
        """The first bucket's partial allreduce (single-bucket compat)."""
        return self.partials[0]

    def exchange(self, flat_gradient: np.ndarray) -> ExchangeResult:
        start = time.perf_counter()
        with _obs.span("bucket-pack", "exchange",
                       buckets=self.bucketer.num_buckets):
            buffers = self.bucketer.pack(
                np.asarray(flat_gradient, dtype=np.float64)
            )
        reduced: List[np.ndarray] = []
        bucket_waits: List[float] = []
        included = True
        num_active = None
        wire_bytes = 0
        for b, (partial, buffer) in enumerate(zip(self.partials, buffers)):
            contribution, decode_template, sent = self._encode_contribution(b, buffer)
            with _obs.span("bucket-wait", "exchange", bucket=b,
                           nbytes=buffer.nbytes):
                result = partial.reduce(contribution)
            data = result.data
            if decode_template is not None:
                data = self.codec.decode(decode_template.with_payload(data))
            reduced.append(data)
            wire_bytes += sent
            bucket_waits.append(result.wait_time)
            included = included and result.included
            num_active = (
                result.num_active
                if num_active is None
                else min(num_active, result.num_active)
            )
        return ExchangeResult(
            gradient=self.bucketer.unpack(reduced),
            included=included,
            num_active=int(num_active or 0),
            wait_time=time.perf_counter() - start,
            bucket_waits=tuple(bucket_waits),
            wire_bytes=wire_bytes,
        )

    def _encode_contribution(self, b: int, buffer: np.ndarray):
        """Apply the codec to one bucket's fresh contribution.

        Returns ``(contribution, decode_template, wire_bytes)`` where
        ``decode_template`` is the :class:`~repro.compression.EncodedGradient`
        to decode the reduced result with (``None`` when the result is
        already dense ``float64``).
        """
        if self._compressor is None:
            return buffer, None, buffer.nbytes
        encoded = self._compressor.encode_bucket(b, buffer)
        if self.codec.reduce_closed:
            return encoded.payload, encoded, encoded.nbytes
        # Decode-reduce-encode caveat (see class docstring): contribute
        # the locally quantized dense gradient; the background wire is
        # dense, and wire_bytes reports it honestly.
        return self._compressor.decode_bucket(encoded), None, buffer.nbytes

    def close(self) -> None:
        for partial in self.partials:
            partial.close()


def build_exchange(
    comm: Optional[Communicator],
    num_parameters: int,
    mode: str,
    sync_style: str = "deep500",
    algorithm: str = "recursive_doubling",
    fusion_buckets: int = 1,
    quorum: Optional[int] = None,
    seed: int = 12345,
    overwrite_recvbuff: bool = True,
    fusion_threshold_bytes: Optional[int] = None,
    pipeline_chunks: int = 1,
    plan: Optional[TunedPlan] = None,
    compression: CompressionSpec = None,
    compression_options: Optional[Dict] = None,
    sharding: str = "none",
) -> GradientExchange:
    """Build the exchange matching a :class:`repro.training.TrainingConfig`.

    ``sharding="zero1"`` selects the :class:`ShardedExchange` (synchronous
    mode only): the configured allreduce ``algorithm`` is mapped onto the
    matching reduce-scatter/allgather pair via
    :data:`_SHARDED_ALGORITHM_FOR_ALLREDUCE`.
    """
    if sharding not in ("none", "zero1"):
        raise ValueError(f"unknown sharding mode {sharding!r}; use 'none' or 'zero1'")
    if comm is None or comm.size == 1:
        return SingleProcessExchange()
    if sharding == "zero1":
        if mode != "sync":
            raise ValueError(
                f"sharding='zero1' requires mode='sync' (the partial "
                f"collectives replicate optimizer state), got mode={mode!r}"
            )
        return ShardedExchange(
            comm,
            algorithm=_SHARDED_ALGORITHM_FOR_ALLREDUCE.get(algorithm, algorithm),
            fusion_buckets=fusion_buckets,
            fusion_threshold_bytes=fusion_threshold_bytes,
            pipeline_chunks=pipeline_chunks,
            plan=plan,
            compression=compression,
            compression_options=compression_options,
        )
    if mode == "sync":
        return SynchronousExchange(
            comm,
            style=sync_style,
            algorithm=algorithm,
            fusion_buckets=fusion_buckets,
            fusion_threshold_bytes=fusion_threshold_bytes,
            pipeline_chunks=pipeline_chunks,
            plan=plan,
            compression=compression,
            compression_options=compression_options,
        )
    return PartialExchange(
        comm,
        num_parameters,
        mode=mode,
        quorum=quorum,
        seed=seed,
        overwrite_recvbuff=overwrite_recvbuff,
        fusion_threshold_bytes=fusion_threshold_bytes,
        pipeline_chunks=pipeline_chunks,
        plan=plan,
        compression=compression,
        compression_options=compression_options,
    )
