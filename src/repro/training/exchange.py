"""Gradient exchanges: synchronous baselines and partial collectives.

A *gradient exchange* turns each rank's local gradient vector into the
globally combined gradient used by the optimizer.  Three implementations
cover the systems compared in the paper's evaluation:

* :class:`SingleProcessExchange` — no communication (P = 1 baseline runs);
* :class:`SynchronousExchange` — synch-SGD.  Two styles are modelled:
  ``"deep500"`` executes the per-bucket allreduces in a fixed order
  (control dependencies in the DAG, Fig. 5), while ``"horovod"`` first
  runs a small negotiation round (achieving consensus on which tensors are
  ready, as Horovod's coordinator does) and then a fused allreduce;
* :class:`PartialExchange` — eager-SGD's exchange over solo / majority /
  quorum allreduce, including the stale-gradient accumulation semantics
  (handled inside :class:`repro.collectives.partial.PartialAllreduce`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.comm.communicator import Communicator
from repro.collectives.partial import PartialAllreduce, PartialMode, make_partial_allreduce
from repro.collectives.sync import allgather, allreduce


@dataclass(frozen=True)
class ExchangeResult:
    """Outcome of one gradient exchange on one rank."""

    #: The combined (averaged) gradient to apply locally.
    gradient: np.ndarray
    #: Whether this rank's freshly computed gradient was part of the
    #: combination (always true for synchronous exchanges).
    included: bool
    #: Number of ranks that contributed fresh gradients.
    num_active: int
    #: Seconds spent inside the exchange call (synchronisation wait).
    wait_time: float


class GradientExchange:
    """Base class for gradient exchanges."""

    name = "base"

    def exchange(self, flat_gradient: np.ndarray) -> ExchangeResult:
        raise NotImplementedError

    def close(self) -> None:
        """Release any background resources (progress threads)."""

    def __enter__(self) -> "GradientExchange":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SingleProcessExchange(GradientExchange):
    """Identity exchange for single-process runs."""

    name = "single"

    def exchange(self, flat_gradient: np.ndarray) -> ExchangeResult:
        return ExchangeResult(
            gradient=np.asarray(flat_gradient, dtype=np.float64),
            included=True,
            num_active=1,
            wait_time=0.0,
        )


class SynchronousExchange(GradientExchange):
    """Synchronous allreduce of the gradient (synch-SGD).

    Parameters
    ----------
    comm:
        Application-channel communicator of this rank.
    style:
        ``"deep500"`` or ``"horovod"`` (see module docstring).
    algorithm:
        Allreduce algorithm (recursive doubling / ring / Rabenseifner).
    fusion_buckets:
        Number of buckets the gradient is split into.  ``1`` models a
        fully fused allreduce; larger values model per-layer reductions
        executed in a fixed order.
    """

    def __init__(
        self,
        comm: Communicator,
        style: str = "deep500",
        algorithm: str = "recursive_doubling",
        fusion_buckets: int = 1,
    ) -> None:
        if style not in ("deep500", "horovod"):
            raise ValueError(f"unknown synchronous style {style!r}")
        if fusion_buckets < 1:
            raise ValueError("fusion_buckets must be >= 1")
        self.comm = comm
        self.style = style
        self.algorithm = algorithm
        self.fusion_buckets = fusion_buckets
        self.name = f"sync-{style}"
        self._step = 0

    def exchange(self, flat_gradient: np.ndarray) -> ExchangeResult:
        start = time.perf_counter()
        flat = np.asarray(flat_gradient, dtype=np.float64)
        if self.style == "horovod":
            # Negotiation: the coordinator-based consensus on which tensors
            # are ready is modelled by a small allgather of readiness
            # tokens; it synchronises all ranks before the fused reduction.
            allgather(self.comm, ("ready", self._step, self.comm.rank))
        pieces: List[np.ndarray] = np.array_split(flat, self.fusion_buckets)
        reduced: List[np.ndarray] = []
        for piece in pieces:
            if piece.size == 0:
                reduced.append(piece)
                continue
            reduced.append(
                allreduce(
                    self.comm,
                    piece,
                    algorithm=self.algorithm,
                    average=True,
                )
            )
        self._step += 1
        gradient = np.concatenate(reduced) if reduced else flat
        return ExchangeResult(
            gradient=gradient,
            included=True,
            num_active=self.comm.size,
            wait_time=time.perf_counter() - start,
        )


class PartialExchange(GradientExchange):
    """Eager-SGD exchange over a partial allreduce.

    Parameters
    ----------
    comm:
        Any communicator of this rank (the partial allreduce derives its
        own library/activation channels from it).
    num_parameters:
        Length of the flat gradient vector.
    mode:
        ``"solo"``, ``"majority"`` or ``"quorum"``.
    quorum:
        Arrivals required in quorum mode.
    seed:
        Shared seed for the initiator designation (must match on all ranks).
    """

    def __init__(
        self,
        comm: Communicator,
        num_parameters: int,
        mode: str = "solo",
        quorum: Optional[int] = None,
        seed: int = 12345,
        overwrite_recvbuff: bool = True,
    ) -> None:
        if num_parameters < 1:
            raise ValueError("num_parameters must be >= 1")
        kwargs = {}
        if PartialMode(mode) is PartialMode.QUORUM:
            kwargs["quorum"] = quorum
        self.partial: PartialAllreduce = make_partial_allreduce(
            comm,
            (num_parameters,),
            mode,
            average=True,
            seed=seed,
            overwrite_recvbuff=overwrite_recvbuff,
            **kwargs,
        )
        self.name = f"eager-{PartialMode(mode).value}"

    def exchange(self, flat_gradient: np.ndarray) -> ExchangeResult:
        result = self.partial.reduce(np.asarray(flat_gradient, dtype=np.float64))
        return ExchangeResult(
            gradient=result.data,
            included=result.included,
            num_active=result.num_active,
            wait_time=result.wait_time,
        )

    def close(self) -> None:
        self.partial.close()


def build_exchange(
    comm: Optional[Communicator],
    num_parameters: int,
    mode: str,
    sync_style: str = "deep500",
    algorithm: str = "recursive_doubling",
    fusion_buckets: int = 1,
    quorum: Optional[int] = None,
    seed: int = 12345,
    overwrite_recvbuff: bool = True,
) -> GradientExchange:
    """Build the exchange matching a :class:`repro.training.TrainingConfig`."""
    if comm is None or comm.size == 1:
        return SingleProcessExchange()
    if mode == "sync":
        return SynchronousExchange(
            comm, style=sync_style, algorithm=algorithm, fusion_buckets=fusion_buckets
        )
    return PartialExchange(
        comm,
        num_parameters,
        mode=mode,
        quorum=quorum,
        seed=seed,
        overwrite_recvbuff=overwrite_recvbuff,
    )
