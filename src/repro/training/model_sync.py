"""Periodic model synchronisation (Section 5 of the paper).

Under severe imbalance, slow eager-SGD processes may lag by more than one
round; the receive buffer is then overwritten and replicas drift apart,
which "may result in slightly lower accuracy".  The paper removes the
drift by synchronising the models every tens of epochs; the overhead is
negligible at that frequency.  :func:`synchronize_model` performs that
synchronisation: a synchronous allreduce that averages the parameters
(and the batch-norm running statistics) across all ranks.
"""

from __future__ import annotations

import hashlib
from typing import List, Optional

import numpy as np

from repro.comm.communicator import Communicator
from repro.collectives.sync import allreduce
from repro.nn.module import Module
from repro.nn.parameters import assign_flat_parameters, flatten_parameters


def _state_arrays(model: Module) -> List[np.ndarray]:
    """Non-trainable state arrays to average (e.g. batch-norm statistics)."""
    arrays: List[np.ndarray] = []
    for name, module in sorted(model.named_modules(), key=lambda kv: kv[0]):
        getter = getattr(module, "state_arrays", None)
        if getter is None:
            continue
        state = getter()
        for key in sorted(state):
            arrays.append(state[key])
    return arrays


def synchronize_model(
    comm: Optional[Communicator],
    model: Module,
    algorithm: str = "recursive_doubling",
) -> None:
    """Average the model parameters (and batch-norm stats) across all ranks."""
    if comm is None or comm.size == 1:
        return
    flat = flatten_parameters(model)
    state = _state_arrays(model)
    sizes = [arr.size for arr in state]
    payload = np.concatenate([flat] + [arr.reshape(-1) for arr in state]) if state else flat
    averaged = allreduce(comm, payload, algorithm=algorithm, average=True)
    assign_flat_parameters(model, averaged[: flat.size])
    offset = flat.size
    for arr, size in zip(state, sizes):
        arr[...] = averaged[offset : offset + size].reshape(arr.shape)
        offset += size


def model_hash(model: Module) -> str:
    """Stable hash of all parameters — used to assert replica consistency."""
    flat = np.ascontiguousarray(flatten_parameters(model))
    return hashlib.sha256(flat.tobytes()).hexdigest()[:16]
