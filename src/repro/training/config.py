"""Training configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from repro.imbalance.cost_model import CostModel
from repro.imbalance.injection import DelayInjector, NoDelay

#: Gradient-exchange modes accepted by the runner.
VALID_MODES = ("sync", "solo", "majority", "quorum")
#: Synchronous baselines (Section 3 of the paper).
VALID_SYNC_STYLES = ("deep500", "horovod")
#: Local optimizers.
VALID_OPTIMIZERS = ("sgd", "momentum", "adam")


@dataclass
class TrainingConfig:
    """Configuration of one distributed training job.

    Attributes
    ----------
    world_size:
        Number of ranks (the paper uses 8, 32 or 64).
    comm_backend:
        Registered communication backend carrying the run: ``"thread"``
        (one thread per rank, shared GIL) or ``"process"`` (one OS
        process per rank over local sockets, true parallelism).  ``None``
        uses the process-wide default (``"thread"`` unless overridden by
        ``REPRO_COMM_BACKEND`` or
        :func:`repro.comm.backend.set_default_backend`).  The tuning
        profile cache is keyed by this name, so each transport gets its
        own calibrated cost model.
    epochs:
        Number of passes over the training set.
    global_batch_size:
        Total batch size across ranks (Table 1's batch size column).
    mode:
        ``"sync"`` for the synch-SGD baselines, ``"solo"`` / ``"majority"``
        / ``"quorum"`` for eager-SGD with the corresponding partial
        collective.
    sync_style:
        For ``mode="sync"``: ``"deep500"`` (ordered per-bucket allreduce)
        or ``"horovod"`` (negotiation + fused allreduce).
    allreduce_algorithm:
        Algorithm used by the synchronous allreduce and the periodic model
        synchronisation.
    fusion_buckets, fusion_threshold_bytes, pipeline_chunks:
        Gradient-fusion configuration: fixed bucket count (legacy),
        byte-capacity fusion buffers, and per-round chunk pipelining of
        the synchronous collectives (see :mod:`repro.training.exchange`).
        ``fusion_threshold_bytes`` and ``pipeline_chunks`` also accept
        the string ``"auto"``: the runner then calibrates the LogGP cost
        model against the thread backend (cached under
        ``tuning_cache_dir``) and picks the values that minimise the
        modelled exchange time (see :mod:`repro.tuning`).
    compression, compression_options:
        Gradient-compression codec applied per fusion bucket by the
        exchange (:mod:`repro.compression`): ``None`` or ``"none"``
        exchanges dense ``float64``; ``"fp16"`` / ``"bf16"`` / ``"int8"``
        / ``"topk"`` quantize or sparsify the wire payload (spec strings
        with inline options such as ``"topk:ratio=0.05"`` are accepted).
        ``compression_options`` merges extra codec options over the
        inline ones (e.g. ``{"error_feedback": True}``).  The ``"auto"``
        fusion knobs are tuned under the selected codec's cost model.
    sharding:
        ``"zero1"`` shards the optimizer states across ranks and runs the
        update over a reduce-scatter/allgather exchange (ZeRO stage 1);
        ``"none"`` keeps the replicated dense update.  Synchronous mode
        only.
    quorum:
        Required number of fresh contributions for ``mode="quorum"``.
    learning_rate, optimizer, momentum, weight_decay:
        Local update rule (the ``U`` of Algorithm 2).
    model_sync_period_epochs:
        Eager-SGD periodically synchronises the replicas to remove the
        divergence introduced by overwritten receive buffers (Section 5);
        the paper synchronises "every tens of epochs".  ``None`` disables
        the periodic synchronisation.
    time_scale:
        Fraction of the *simulated* per-step duration (compute cost +
        injected delay) that is actually slept by each rank thread.
        Non-zero values create genuine asynchrony between threads so that
        the partial collectives see realistic arrival orders; the
        projected time axes always use the unscaled simulated durations.
    delay_injector, cost_model:
        The load-imbalance model (system-induced and inherent).
    gradient_clip:
        Optional L2 clip applied to the local gradient before the exchange.
    seed:
        Base seed: model initialisation (identical on every rank), data
        shuffling, initiator designation.
    eval_batch_size:
        Batch size used during evaluation passes.
    collect_gradient_norms:
        Record the post-exchange gradient norm each step (used by the
        convergence-criterion checks of Section 5.1).
    """

    world_size: int = 4
    comm_backend: Optional[str] = None
    epochs: int = 2
    global_batch_size: int = 64
    mode: str = "sync"
    sync_style: str = "deep500"
    allreduce_algorithm: str = "recursive_doubling"
    quorum: Optional[int] = None
    learning_rate: float = 0.05
    optimizer: str = "sgd"
    momentum: float = 0.9
    weight_decay: float = 0.0
    model_sync_period_epochs: Optional[int] = 10
    time_scale: float = 0.0
    delay_injector: DelayInjector = field(default_factory=NoDelay)
    cost_model: Optional[CostModel] = None
    gradient_clip: Optional[float] = None
    seed: int = 0
    eval_batch_size: int = 256
    collect_gradient_norms: bool = False
    fusion_buckets: int = 1
    #: Pack the gradient into fusion buffers of at most this many bytes
    #: (Horovod-style tensor fusion); one collective is issued per bucket.
    #: ``None`` keeps the legacy fixed-count ``fusion_buckets`` behaviour;
    #: ``"auto"`` lets the runner pick via the calibrated cost model.
    fusion_threshold_bytes: Union[int, str, None] = None
    #: Segments each gradient-exchange collective round is pipelined in,
    #: so the reduction of chunk k overlaps the transmission of chunk k+1
    #: (applies to the synchronous allreduces and, for sum/avg payloads,
    #: to the partial collectives' background reduction).  ``"auto"``
    #: lets the runner pick via the calibrated cost model.
    pipeline_chunks: Union[int, str] = 1
    #: Gradient-compression codec name / spec (see class docstring);
    #: ``None`` exchanges dense ``float64``.
    compression: Optional[str] = None
    #: Extra codec options merged over inline spec options.
    compression_options: Dict[str, object] = field(default_factory=dict)
    #: Directory of the calibrated-profile cache consulted when resolving
    #: ``"auto"`` fusion values; ``None`` uses ``$REPRO_TUNING_CACHE_DIR``
    #: or ``~/.cache/repro/tuning``.
    tuning_cache_dir: Optional[str] = None
    #: Optimizer-state sharding: ``"none"`` replicates optimizer state on
    #: every rank; ``"zero1"`` (synchronous mode only) reduce-scatters each
    #: fusion bucket, applies the optimizer update on the owned 1/P shard
    #: and allgathers the refreshed parameters (ZeRO stage 1 — see
    #: :class:`repro.training.exchange.ShardedExchange`).
    sharding: str = "none"
    #: Paper-faithful single receive buffer for partial collectives: a
    #: lagging rank only sees the latest completed round (Section 5).
    #: Disable for exact per-round results (ablation).
    overwrite_recvbuff: bool = True
    #: Use independent per-rank length-bucketed input pipelines ("videos
    #: with similar lengths are grouped into buckets", Section 2.1); this
    #: is what makes the inherent imbalance of variable-length workloads
    #: visible across ranks.  Requires a dataset with example sizes.
    bucket_by_length: bool = False

    def validate(self) -> None:
        if self.world_size < 1:
            raise ValueError(f"world_size must be >= 1, got {self.world_size}")
        if self.comm_backend is not None:
            from repro.comm.backend import get_backend

            get_backend(self.comm_backend)  # raises ValueError on unknown names
        if self.epochs < 1:
            raise ValueError(f"epochs must be >= 1, got {self.epochs}")
        if self.global_batch_size < self.world_size:
            raise ValueError(
                f"global_batch_size must be >= world_size "
                f"({self.world_size}), got {self.global_batch_size}"
            )
        if self.mode not in VALID_MODES:
            raise ValueError(f"mode must be one of {VALID_MODES}, got {self.mode!r}")
        if self.sync_style not in VALID_SYNC_STYLES:
            raise ValueError(
                f"sync_style must be one of {VALID_SYNC_STYLES}, got {self.sync_style!r}"
            )
        if self.optimizer not in VALID_OPTIMIZERS:
            raise ValueError(
                f"optimizer must be one of {VALID_OPTIMIZERS}, got {self.optimizer!r}"
            )
        if self.mode == "quorum":
            if self.quorum is None or not 1 <= self.quorum <= self.world_size:
                raise ValueError(
                    f"quorum mode requires 1 <= quorum <= {self.world_size}, got {self.quorum}"
                )
        if self.learning_rate <= 0:
            raise ValueError(f"learning_rate must be positive, got {self.learning_rate}")
        if self.time_scale < 0:
            raise ValueError(f"time_scale must be non-negative, got {self.time_scale}")
        if self.model_sync_period_epochs is not None and self.model_sync_period_epochs < 1:
            raise ValueError(
                f"model_sync_period_epochs must be >= 1 or None, "
                f"got {self.model_sync_period_epochs}"
            )
        if self.fusion_buckets < 1:
            raise ValueError(f"fusion_buckets must be >= 1, got {self.fusion_buckets}")
        if isinstance(self.fusion_threshold_bytes, str):
            if self.fusion_threshold_bytes != "auto":
                raise ValueError(
                    f"fusion_threshold_bytes must be an integer, None or 'auto', "
                    f"got {self.fusion_threshold_bytes!r}"
                )
        elif self.fusion_threshold_bytes is not None and self.fusion_threshold_bytes < 1:
            raise ValueError(
                f"fusion_threshold_bytes must be >= 1, None or 'auto', "
                f"got {self.fusion_threshold_bytes!r}"
            )
        if isinstance(self.pipeline_chunks, str):
            if self.pipeline_chunks != "auto":
                raise ValueError(
                    f"pipeline_chunks must be an integer or 'auto', "
                    f"got {self.pipeline_chunks!r}"
                )
        elif self.pipeline_chunks < 1:
            raise ValueError(
                f"pipeline_chunks must be >= 1 or 'auto', got {self.pipeline_chunks!r}"
            )
        if self.compression is not None or self.compression_options:
            from repro.compression import get_codec

            # Raises ValueError on unknown codec names or invalid options.
            get_codec(self.compression, **self.compression_options)
        if self.sharding not in ("none", "zero1"):
            raise ValueError(
                f"sharding must be 'none' or 'zero1', got {self.sharding!r}"
            )
        if self.sharding == "zero1":
            if self.mode != "sync":
                raise ValueError(
                    f"sharding='zero1' requires mode='sync', got mode={self.mode!r}"
                )
            if self.collect_gradient_norms:
                raise ValueError(
                    f"sharding={self.sharding!r} cannot collect gradient "
                    f"norms: the sharded exchange never materialises the "
                    f"full reduced gradient on any rank"
                )

    @property
    def local_batch_size(self) -> int:
        return self.global_batch_size // self.world_size

    @property
    def is_eager(self) -> bool:
        """Whether the configuration runs eager-SGD (any partial collective)."""
        return self.mode in ("solo", "majority", "quorum")

    def describe(self) -> str:
        """One-line description used in experiment reports."""
        if self.mode == "sync":
            variant = f"synch-SGD ({self.sync_style})"
            if self.sharding == "zero1":
                variant += ", zero1"
        else:
            variant = f"eager-SGD ({self.mode})"
            if self.mode == "quorum":
                variant = f"eager-SGD (quorum={self.quorum})"
        backend = f", backend={self.comm_backend}" if self.comm_backend else ""
        codec = ""
        if self.compression is not None or self.compression_options:
            from repro.compression import get_codec

            codec = f", compression={get_codec(self.compression, **self.compression_options).describe()}"
        return (
            f"{variant}, P={self.world_size}{backend}, "
            f"batch={self.global_batch_size}, "
            f"epochs={self.epochs}, imbalance={self.delay_injector.describe()}{codec}"
        )
