"""Model evaluation, local and distributed.

Validation metrics in the paper (validation loss for the hyperplane
regression, top-1/top-5 test accuracy for the classifiers) are computed
over a held-out set at epoch boundaries.  :func:`distributed_evaluate`
shares the work across ranks — every rank evaluates a disjoint shard of
the evaluation set and the per-shard sums are combined with a synchronous
allreduce — so evaluation is fast and, importantly for eager-SGD,
*symmetric*: every rank participates, so evaluation does not perturb the
relative arrival order of the ranks at the next training step.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.comm.communicator import Communicator
from repro.collectives.sync import allreduce
from repro.data.loader import Batch, Dataset
from repro.nn.metrics import topk_accuracy
from repro.nn.module import Module

LossFn = Callable[[np.ndarray, np.ndarray], Tuple[float, np.ndarray]]


def _evaluate_indices(
    model: Module,
    dataset: Dataset,
    indices: np.ndarray,
    loss_fn: LossFn,
    batch_size: int,
    classification: bool,
) -> Dict[str, float]:
    """Return metric *sums* (not means) over the given examples."""
    total_loss = 0.0
    correct1 = 0.0
    correct5 = 0.0
    count = 0
    for start in range(0, len(indices), batch_size):
        chunk = indices[start : start + batch_size]
        batch: Batch = dataset.get_batch(chunk)
        outputs = model.forward(batch.inputs)
        loss, _ = loss_fn(outputs, batch.targets)
        n = len(chunk)
        total_loss += loss * n
        if classification and outputs.ndim == 2 and outputs.shape[1] >= 2:
            correct1 += topk_accuracy(outputs, batch.targets, k=1) * n
            k5 = min(5, outputs.shape[1])
            correct5 += topk_accuracy(outputs, batch.targets, k=k5) * n
        count += n
    return {"loss_sum": total_loss, "top1_sum": correct1, "top5_sum": correct5, "count": count}


def evaluate_model(
    model: Module,
    dataset: Dataset,
    loss_fn: LossFn,
    batch_size: int = 256,
    classification: bool = True,
) -> Dict[str, float]:
    """Evaluate ``model`` over the whole dataset on a single process."""
    was_training = model.training
    model.eval()
    try:
        sums = _evaluate_indices(
            model, dataset, np.arange(len(dataset)), loss_fn, batch_size, classification
        )
    finally:
        model.train(was_training)
    count = max(1, sums["count"])
    return {
        "loss": sums["loss_sum"] / count,
        "top1": sums["top1_sum"] / count,
        "top5": sums["top5_sum"] / count,
        "count": float(sums["count"]),
    }


def distributed_evaluate(
    comm: Optional[Communicator],
    model: Module,
    dataset: Dataset,
    loss_fn: LossFn,
    batch_size: int = 256,
    classification: bool = True,
    algorithm: str = "recursive_doubling",
) -> Dict[str, float]:
    """Evaluate cooperatively: each rank scores a shard, results are reduced.

    Note that each rank evaluates with *its own* replica; under eager-SGD
    the replicas may have drifted slightly, so the reported metric is the
    average over replicas of the per-shard metrics — matching how the
    paper reports a single curve per run while replicas are only
    approximately synchronised between periodic model syncs.
    """
    if comm is None or comm.size == 1:
        return evaluate_model(model, dataset, loss_fn, batch_size, classification)
    n = len(dataset)
    shard = np.array_split(np.arange(n), comm.size)[comm.rank]
    was_training = model.training
    model.eval()
    try:
        sums = _evaluate_indices(model, dataset, shard, loss_fn, batch_size, classification)
    finally:
        model.train(was_training)
    payload = np.array(
        [sums["loss_sum"], sums["top1_sum"], sums["top5_sum"], float(sums["count"])]
    )
    combined = allreduce(comm, payload, algorithm=algorithm, average=False)
    count = max(1.0, float(combined[3]))
    return {
        "loss": float(combined[0]) / count,
        "top1": float(combined[1]) / count,
        "top5": float(combined[2]) / count,
        "count": count,
    }
