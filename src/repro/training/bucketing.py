"""Gradient fusion buckets (Horovod-style tensor fusion).

Shipping every layer's gradient through its own collective drowns the
exchange in per-message latency; shipping the whole model as one
monolithic buffer serialises the entire reduction behind a single
blocking call.  Tensor fusion is the standard middle ground (Horovod's
``HOROVOD_FUSION_THRESHOLD``): consecutive parameters are packed into
fusion buffers of at most ``fusion_threshold_bytes``, and the exchange
issues one collective per bucket so buckets can pipeline against each
other and, with chunked collectives, within themselves.

:class:`GradientBucketer` owns the mapping between the flat gradient
vector (what :func:`repro.nn.parameters.flatten_gradients` produces) and
the per-bucket fusion buffers.  Packing and unpacking are bit-exact
inverses — the bucketer only ever slices and concatenates, it never
re-orders or re-scales elements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np


def _validate_wire_width(
    wire_bytes_per_element: Optional[float], bytes_per_element: int
) -> float:
    """Resolve the encoded element width (dense width when ``None``)."""
    if wire_bytes_per_element is None:
        return float(bytes_per_element)
    wire = float(wire_bytes_per_element)
    if not wire > 0 or not np.isfinite(wire):
        raise ValueError(
            f"wire_bytes_per_element must be positive and finite, got "
            f"{wire_bytes_per_element}"
        )
    return wire

#: Default fusion-buffer capacity.  Horovod defaults to 64 MiB on GPU
#: clusters; the thread-backed reproduction models smaller gradients, so
#: a 2 MiB default produces a representative handful of buckets.
DEFAULT_FUSION_THRESHOLD_BYTES = 2 * 1024 * 1024

#: Gradients travel as float64 on this substrate.
BYTES_PER_ELEMENT = 8


@dataclass(frozen=True)
class BucketSpec:
    """One fusion buffer: a contiguous element range of the flat gradient."""

    #: Position of the bucket in the fixed (deep500) issue order.
    index: int
    #: First element (inclusive) of the flat gradient owned by the bucket.
    start: int
    #: One past the last element owned by the bucket.
    stop: int
    #: Indices of the parameters packed into this bucket (empty for
    #: buckets built from an element range rather than a parameter list).
    param_indices: Tuple[int, ...] = ()
    #: Element width of the substrate the bucketer was built for; keeps
    #: :attr:`nbytes` consistent with the byte budget the bucketer used.
    bytes_per_element: int = BYTES_PER_ELEMENT
    #: Encoded payload width per element on the wire (may be fractional,
    #: e.g. 2.0 for fp16 or 0.08 for 1% top-k).  Equal to
    #: :attr:`bytes_per_element` when the exchange is uncompressed.
    wire_bytes_per_element: float = float(BYTES_PER_ELEMENT)

    @property
    def num_elements(self) -> int:
        return self.stop - self.start

    @property
    def nbytes(self) -> int:
        return self.num_elements * self.bytes_per_element

    @property
    def wire_nbytes(self) -> int:
        """Encoded bytes this bucket occupies on the wire."""
        return int(round(self.num_elements * self.wire_bytes_per_element))


class GradientBucketer:
    """Packs per-parameter gradients into fixed-byte fusion buffers.

    Parameters
    ----------
    param_sizes:
        Flat element count of each parameter tensor, in model order.
        Consecutive parameters are packed greedily: a bucket is closed
        when adding the next parameter would exceed the threshold (a
        single parameter larger than the threshold gets a bucket of its
        own — parameters are never split across buckets).
    fusion_threshold_bytes:
        Capacity of one fusion buffer in bytes.
    bytes_per_element:
        Element width used to convert the threshold into elements.
    wire_bytes_per_element:
        Encoded payload width per element (a gradient codec's
        :attr:`~repro.compression.GradientCodec.wire_bytes_per_element`).
        When given, the *threshold* budgets the encoded wire size, so a
        compressing codec packs proportionally more elements per bucket
        (a 2 MiB buffer holds 4x the elements under fp16).  ``None``
        keeps the dense width.
    """

    def __init__(
        self,
        param_sizes: Sequence[int],
        fusion_threshold_bytes: int = DEFAULT_FUSION_THRESHOLD_BYTES,
        bytes_per_element: int = BYTES_PER_ELEMENT,
        wire_bytes_per_element: Optional[float] = None,
    ) -> None:
        sizes = [int(s) for s in param_sizes]
        if not sizes:
            raise ValueError(f"param_sizes must not be empty, got {param_sizes!r}")
        if any(s < 1 for s in sizes):
            raise ValueError(f"parameter sizes must be >= 1, got {sizes}")
        if fusion_threshold_bytes < 1:
            raise ValueError(
                f"fusion_threshold_bytes must be >= 1, got {fusion_threshold_bytes}"
            )
        if bytes_per_element < 1:
            raise ValueError(f"bytes_per_element must be >= 1, got {bytes_per_element}")
        wire_bpe = _validate_wire_width(wire_bytes_per_element, bytes_per_element)
        self.fusion_threshold_bytes = int(fusion_threshold_bytes)
        self.bytes_per_element = int(bytes_per_element)
        self.wire_bytes_per_element = wire_bpe
        capacity = max(1, int(fusion_threshold_bytes / wire_bpe))

        buckets: List[BucketSpec] = []
        start = 0
        current: List[int] = []
        filled = 0
        for i, size in enumerate(sizes):
            if current and filled + size > capacity:
                stop = start + filled
                buckets.append(
                    BucketSpec(
                        len(buckets), start, stop, tuple(current),
                        bytes_per_element=self.bytes_per_element,
                        wire_bytes_per_element=wire_bpe,
                    )
                )
                start, current, filled = stop, [], 0
            current.append(i)
            filled += size
        stop = start + filled
        buckets.append(
            BucketSpec(
                len(buckets), start, stop, tuple(current),
                bytes_per_element=self.bytes_per_element,
                wire_bytes_per_element=wire_bpe,
            )
        )
        self.buckets: Tuple[BucketSpec, ...] = tuple(buckets)
        self.num_elements = stop

    # ------------------------------------------------------------ builders
    @classmethod
    def from_model(cls, model, **kwargs) -> "GradientBucketer":
        """Bucketer over ``model``'s parameters (model order)."""
        return cls([p.data.size for p in model.parameters()], **kwargs)

    @classmethod
    def from_flat(
        cls,
        num_elements: int,
        fusion_threshold_bytes: int = DEFAULT_FUSION_THRESHOLD_BYTES,
        bytes_per_element: int = BYTES_PER_ELEMENT,
        wire_bytes_per_element: Optional[float] = None,
    ) -> "GradientBucketer":
        """Bucketer chopping a flat vector into threshold-sized ranges.

        Used when per-parameter boundaries are unknown (the exchange only
        sees the flattened gradient): the vector is cut into the smallest
        number of equal-ish contiguous ranges that each fit the threshold.
        ``wire_bytes_per_element`` budgets the threshold against the
        *encoded* payload width (see the constructor).
        """
        if num_elements < 1:
            raise ValueError(f"num_elements must be >= 1, got {num_elements}")
        if bytes_per_element < 1:
            raise ValueError(f"bytes_per_element must be >= 1, got {bytes_per_element}")
        wire_bpe = _validate_wire_width(wire_bytes_per_element, bytes_per_element)
        capacity = max(1, int(fusion_threshold_bytes / wire_bpe))
        count = -(-num_elements // capacity)  # ceil division
        return cls.fixed_count(
            num_elements, count, fusion_threshold_bytes, bytes_per_element,
            wire_bytes_per_element,
        )

    @classmethod
    def fixed_count(
        cls,
        num_elements: int,
        count: int,
        fusion_threshold_bytes: int = DEFAULT_FUSION_THRESHOLD_BYTES,
        bytes_per_element: int = BYTES_PER_ELEMENT,
        wire_bytes_per_element: Optional[float] = None,
    ) -> "GradientBucketer":
        """Bucketer with exactly ``count`` near-equal element ranges.

        Backwards-compatible with the legacy ``fusion_buckets=N`` knob
        (fixed per-layer-group reductions executed in a fixed order):
        like the ``np.array_split`` it replaces, a ``count`` exceeding
        the element count is capped at one element per bucket (the
        surplus buckets would be empty no-ops).  A ``count`` below one
        is an error.
        """
        if num_elements < 1:
            raise ValueError(f"num_elements must be >= 1, got {num_elements}")
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")
        if bytes_per_element < 1:
            raise ValueError(f"bytes_per_element must be >= 1, got {bytes_per_element}")
        wire_bpe = _validate_wire_width(wire_bytes_per_element, bytes_per_element)
        count = min(int(count), num_elements)
        bucketer = cls.__new__(cls)
        base, extra = divmod(num_elements, count)
        buckets: List[BucketSpec] = []
        lo = 0
        for i in range(count):
            hi = lo + base + (1 if i < extra else 0)
            buckets.append(
                BucketSpec(
                    i, lo, hi, bytes_per_element=int(bytes_per_element),
                    wire_bytes_per_element=wire_bpe,
                )
            )
            lo = hi
        bucketer.fusion_threshold_bytes = int(fusion_threshold_bytes)
        bucketer.bytes_per_element = int(bytes_per_element)
        bucketer.wire_bytes_per_element = wire_bpe
        bucketer.buckets = tuple(buckets)
        bucketer.num_elements = num_elements
        return bucketer

    # ------------------------------------------------------------ packing
    @property
    def num_buckets(self) -> int:
        return len(self.buckets)

    def pack(
        self,
        flat_gradient: np.ndarray,
        out: Optional[List[np.ndarray]] = None,
    ) -> List[np.ndarray]:
        """Slice the flat gradient into per-bucket fusion buffers.

        Each buffer is an owned contiguous copy (a real fusion buffer the
        collective can reduce in place), bit-identical to the source
        elements.  ``out`` recycles a previous ``pack``'s buffer list
        (same bucketer): the copies then land in already-faulted pages,
        which is what makes Horovod-style *persistent* fusion buffers
        cheaper than per-step allocation.  Buffers of the wrong shape or
        dtype (e.g. replaced by a decode-reduce-encode result) are
        reallocated transparently.
        """
        flat = np.asarray(flat_gradient).reshape(-1)
        if flat.size != self.num_elements:
            raise ValueError(
                f"flat gradient has {flat.size} elements, bucketer expects "
                f"{self.num_elements}"
            )
        if out is None or len(out) != self.num_buckets:
            return [np.array(flat[b.start : b.stop], copy=True) for b in self.buckets]
        buffers = []
        for bucket, buf in zip(self.buckets, out):
            segment = flat[bucket.start : bucket.stop]
            if (
                isinstance(buf, np.ndarray)
                and buf.shape == segment.shape
                and buf.dtype == segment.dtype
                and buf.flags.writeable
            ):
                np.copyto(buf, segment)
                buffers.append(buf)
            else:
                buffers.append(np.array(segment, copy=True))
        return buffers

    def pack_params(self, gradients: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Pack per-parameter gradient tensors into fusion buffers.

        ``gradients`` must follow the parameter order the bucketer was
        built from; tensors are flattened and concatenated per bucket.
        """
        if any(not b.param_indices for b in self.buckets):
            raise ValueError(
                f"this bucketer ({self.num_buckets} bucket(s)) was built from element "
                f"ranges, not parameter sizes; use pack() with the flat gradient instead"
            )
        flats = [np.asarray(g).reshape(-1) for g in gradients]
        buffers = []
        for bucket in self.buckets:
            parts = [flats[i] for i in bucket.param_indices]
            buffer = np.concatenate(parts) if len(parts) > 1 else np.array(parts[0], copy=True)
            if buffer.size != bucket.num_elements:
                raise ValueError(
                    f"bucket {bucket.index} expected {bucket.num_elements} "
                    f"elements, got {buffer.size}: gradient shapes do not "
                    f"match the bucketer's parameter sizes"
                )
            buffers.append(buffer)
        return buffers

    def shard_windows(
        self,
        world_size: int,
        algorithm: str = "ring",
        topology=None,
    ) -> List[List[Tuple[int, int]]]:
        """Per-bucket, per-rank owned windows for a sharded (ZeRO-1) exchange.

        ``result[b][r]`` is the ``(lo, hi)`` window — in *bucket-local*
        coordinates, i.e. offsets into bucket ``b``'s fusion buffer —
        that rank ``r`` owns after a
        :func:`repro.collectives.sharding.reduce_scatter` of that
        bucket.  Sharding is aligned per bucket (each fusion buffer is
        its own collective), so the windows follow the same ownership
        map the collective uses; global flat coordinates are recovered
        by adding ``bucket.start``.
        """
        from repro.collectives.sharding import shard_bounds

        if world_size < 1:
            raise ValueError(f"world_size must be >= 1, got {world_size}")
        return [
            shard_bounds(b.num_elements, world_size, algorithm, topology=topology)
            for b in self.buckets
        ]

    def unpack(self, buffers: Sequence[np.ndarray]) -> np.ndarray:
        """Reassemble the flat gradient from per-bucket buffers (bit-exact)."""
        if len(buffers) != self.num_buckets:
            raise ValueError(
                f"expected {self.num_buckets} buffers, got {len(buffers)}"
            )
        out = np.empty(self.num_elements, dtype=np.float64)
        for bucket, buffer in zip(self.buckets, buffers):
            buf = np.asarray(buffer).reshape(-1)
            if buf.size != bucket.num_elements:
                raise ValueError(
                    f"bucket {bucket.index} expected {bucket.num_elements} "
                    f"elements, got {buf.size}"
                )
            out[bucket.start : bucket.stop] = buf
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"GradientBucketer(buckets={self.num_buckets}, "
            f"elements={self.num_elements}, "
            f"threshold={self.fusion_threshold_bytes}B)"
        )
