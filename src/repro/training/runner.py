"""SPMD training runner over a pluggable communication backend.

:func:`train_distributed` is the user-facing entry point of the training
side of the library: it takes a model factory, a dataset, a loss and a
:class:`~repro.training.config.TrainingConfig`, spawns one rank per
thread or OS process (``config.comm_backend``, see
:mod:`repro.comm.backend`), runs the configured SGD variant and returns a
:class:`~repro.training.metrics.TrainingResult` containing per-epoch
metrics, the per-rank workload trace and a paper-scale timing projection.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.comm.backend import launch
from repro.comm.communicator import Communicator
from repro.collectives.sync import allreduce
from repro.data.loader import Dataset, ShardedLoader
from repro.nn.module import Module
from repro.nn.optim import Adam, MomentumSGD, Optimizer, SGD
from repro.simtime.network import DEFAULT_NETWORK
from repro.simtime.training_model import StepTimeline, project_training_time
from repro.training.config import TrainingConfig
from repro.training.distributed_sgd import DistributedSGD
from repro.training.evaluation import distributed_evaluate
from repro.training.exchange import build_exchange
from repro.training.metrics import EpochRecord, RankSummary, TrainingResult
from repro.training.model_sync import model_hash, synchronize_model
from repro.tuning.autotune import resolve_auto_fusion

ModelFactory = Callable[[], Module]
LossFn = Callable[[np.ndarray, np.ndarray], Tuple[float, np.ndarray]]


@dataclass
class _RankOutput:
    """Raw data returned by each rank thread."""

    rank: int
    epoch_records: List[EpochRecord]
    step_durations: List[float]
    max_staleness: int
    mean_staleness: float
    inclusion_rate: float
    mean_num_active: float
    min_num_active: int
    final_model_hash: str
    gradient_norms: List[float] = field(default_factory=list)


def _build_optimizer(model: Module, config: TrainingConfig) -> Optimizer:
    if config.optimizer == "sgd":
        return SGD(model, config.learning_rate, weight_decay=config.weight_decay)
    if config.optimizer == "momentum":
        return MomentumSGD(
            model,
            config.learning_rate,
            momentum=config.momentum,
            weight_decay=config.weight_decay,
        )
    return Adam(model, config.learning_rate, weight_decay=config.weight_decay)


def _nan_to(value: float, fallback: float = 0.0) -> float:
    return fallback if value is None or math.isnan(value) else float(value)


def _rank_main(
    comm: Communicator,
    model_factory: ModelFactory,
    train_dataset: Dataset,
    eval_dataset: Optional[Dataset],
    loss_fn: LossFn,
    config: TrainingConfig,
    classification: bool,
) -> _RankOutput:
    config.validate()
    rank = comm.rank
    model = model_factory()
    optimizer = _build_optimizer(model, config)
    exchange = build_exchange(
        comm,
        max(1, model.num_parameters()),
        config.mode,
        sync_style=config.sync_style,
        algorithm=config.allreduce_algorithm,
        fusion_buckets=config.fusion_buckets,
        quorum=config.quorum,
        seed=config.seed + 777,
        overwrite_recvbuff=config.overwrite_recvbuff,
        fusion_threshold_bytes=config.fusion_threshold_bytes,
        pipeline_chunks=config.pipeline_chunks,
        compression=config.compression,
        compression_options=config.compression_options,
        sharding=config.sharding,
    )
    sgd = DistributedSGD(
        model,
        optimizer,
        exchange,
        loss_fn,
        world_size=config.world_size,
        gradient_clip=config.gradient_clip,
        classification=classification,
        collect_gradient_norms=config.collect_gradient_norms,
    )
    loader = ShardedLoader(
        train_dataset,
        config.global_batch_size,
        rank=rank,
        world_size=config.world_size,
        seed=config.seed,
        bucket_by_length=config.bucket_by_length,
    )

    epoch_records: List[EpochRecord] = []
    step_durations: List[float] = []
    gradient_norms: List[float] = []
    global_step = 0

    try:
        for epoch in range(config.epochs):
            epoch_start = time.perf_counter()
            losses: List[float] = []
            top1s: List[float] = []
            top5s: List[float] = []
            naps: List[float] = []
            for batch in loader.epoch_batches(epoch):
                delay = config.delay_injector.delay_for_rank(
                    global_step, rank, config.world_size
                )
                sim_compute: Optional[float] = None
                if config.cost_model is not None:
                    sim_compute = config.cost_model.batch_cost(batch)
                sleep = 0.0
                if config.time_scale > 0:
                    sleep = config.time_scale * ((sim_compute or 0.0) + delay)
                stats = sgd.step(batch, pre_exchange_sleep=sleep)
                local_work = sim_compute if sim_compute is not None else stats.compute_time
                step_durations.append(local_work + delay)
                losses.append(stats.loss)
                top1s.append(_nan_to(stats.top1))
                top5s.append(_nan_to(stats.top5))
                naps.append(stats.num_active)
                if config.collect_gradient_norms:
                    gradient_norms.append(stats.gradient_norm)
                global_step += 1

            # ---- epoch-level metrics, identical on every rank ----
            local_summary = np.array(
                [float(np.mean(losses)), float(np.mean(top1s)), float(np.mean(top5s))]
            )
            if comm.size > 1:
                train_summary = allreduce(
                    comm, local_summary, algorithm=config.allreduce_algorithm, average=True
                )
            else:
                train_summary = local_summary
            if eval_dataset is not None:
                eval_metrics = distributed_evaluate(
                    comm,
                    model,
                    eval_dataset,
                    loss_fn,
                    batch_size=config.eval_batch_size,
                    classification=classification,
                    algorithm=config.allreduce_algorithm,
                )
            else:
                eval_metrics = {"loss": float("nan"), "top1": float("nan"), "top5": float("nan")}

            # ---- periodic model synchronisation (eager-SGD, Section 5) ----
            if (
                config.is_eager
                and config.model_sync_period_epochs
                and (epoch + 1) % config.model_sync_period_epochs == 0
            ):
                synchronize_model(comm, model, algorithm=config.allreduce_algorithm)

            epoch_records.append(
                EpochRecord(
                    epoch=epoch,
                    train_loss=float(train_summary[0]),
                    train_top1=float(train_summary[1]),
                    train_top5=float(train_summary[2]),
                    eval_loss=_nan_to(eval_metrics["loss"], float("nan")),
                    eval_top1=_nan_to(eval_metrics["top1"]),
                    eval_top5=_nan_to(eval_metrics["top5"]),
                    mean_num_active=float(np.mean(naps)) if naps else 0.0,
                    inclusion_rate=sgd.staleness.inclusion_rate,
                    wall_time=time.perf_counter() - epoch_start,
                )
            )
    finally:
        sgd.close()

    return _RankOutput(
        rank=rank,
        epoch_records=epoch_records,
        step_durations=step_durations,
        max_staleness=sgd.staleness.max_staleness,
        mean_staleness=sgd.staleness.mean_staleness,
        inclusion_rate=sgd.staleness.inclusion_rate,
        mean_num_active=sgd.quorum.mean_quorum,
        min_num_active=sgd.quorum.min_quorum,
        final_model_hash=model_hash(model),
        gradient_norms=gradient_norms,
    )


def train_distributed(
    model_factory: ModelFactory,
    train_dataset: Dataset,
    loss_fn: LossFn,
    config: TrainingConfig,
    eval_dataset: Optional[Dataset] = None,
    classification: bool = True,
    gradient_bytes_per_parameter: int = 4,
    run_timeout: float = 1800.0,
) -> TrainingResult:
    """Run one distributed training job and return its results.

    Parameters
    ----------
    model_factory:
        Zero-argument callable building the model.  It must be
        deterministic (fixed seed) so that every rank starts from the same
        replica, as data-parallel SGD requires.
    train_dataset, eval_dataset:
        Shared datasets; the runner shards the training set across ranks.
    loss_fn:
        ``(outputs, targets) -> (loss, grad)``.
    config:
        The training configuration (mode, imbalance model, ...).
    classification:
        Whether top-1/top-5 accuracy should be computed.
    gradient_bytes_per_parameter:
        Used by the timing projection: the paper's models communicate fp32
        gradients, i.e. 4 bytes per parameter.
    run_timeout:
        Wall-clock limit for the whole run (converted into a hard error
        rather than a hang if something deadlocks).
    """
    config.validate()
    start = time.perf_counter()
    probe_model = model_factory()
    num_parameters = probe_model.num_parameters()
    # Resolve the compression codec once, before the world spawns: the
    # spec is validated here (fail fast, not inside P ranks), the "auto"
    # fusion knobs below are tuned under its cost model, and the timing
    # projection scales the wire bytes it models.  Each rank builds its
    # own codec instance (error-feedback residuals are per-rank state).
    from repro.compression import resolve_codec

    codec = resolve_codec(config.compression, config.compression_options)
    # Resolve "auto" fusion knobs once, before the world spawns: every
    # rank must run the same concrete plan, and the calibrated profile is
    # cached so repeat runs skip the measurement.
    config = resolve_auto_fusion(config, max(1, num_parameters))

    if config.world_size == 1:
        outputs = [
            _rank_main(
                _single_process_comm(),
                model_factory,
                train_dataset,
                eval_dataset,
                loss_fn,
                config,
                classification,
            )
        ]
    else:
        outputs = launch(
            _rank_main,
            config.world_size,
            model_factory,
            train_dataset,
            eval_dataset,
            loss_fn,
            config,
            classification,
            backend=config.comm_backend,
            timeout=run_timeout,
        )
    wall_time = time.perf_counter() - start

    # ---- assemble the per-rank traces into a (steps, ranks) matrix ----
    durations = np.stack([np.asarray(out.step_durations) for out in outputs], axis=1)
    steps_per_epoch = durations.shape[0] // config.epochs if config.epochs else 0

    projection = None
    if durations.size:
        sync_period_steps = None
        if config.is_eager and config.model_sync_period_epochs:
            sync_period_steps = config.model_sync_period_epochs * steps_per_epoch
        # Paper-scale wire bytes per step: reduce-closed codecs put the
        # codec's *absolute* encoded width on every hop (fp16 is 2 bytes
        # per parameter whether the dense substrate stores 4 or 8), so
        # the projection uses that width, capped at the uncompressed
        # per-parameter bytes.  Non-reduce-closed codecs keep the
        # partial collectives' background wire dense (see
        # PartialExchange), so their projection stays dense too.
        projected_bytes = num_parameters * gradient_bytes_per_parameter
        if codec is not None and codec.reduce_closed:
            projected_bytes = max(1, int(
                num_parameters
                * min(codec.wire_bytes_per_element, gradient_bytes_per_parameter)
            ))
        projection = project_training_time(
            StepTimeline(durations),
            mode=config.mode,
            gradient_bytes=projected_bytes,
            params=DEFAULT_NETWORK,
            algorithm=config.allreduce_algorithm,
            seed=config.seed + 777,
            quorum=config.quorum,
            model_sync_period=sync_period_steps,
        )

    # ---- fill the projected epoch-boundary times into the records ----
    records = outputs[0].epoch_records
    if projection is not None and steps_per_epoch > 0:
        for record in records:
            end_step = min(
                (record.epoch + 1) * steps_per_epoch - 1,
                len(projection.step_completion_times) - 1,
            )
            record.sim_time = float(projection.step_completion_times[end_step])

    summaries = [
        RankSummary(
            rank=out.rank,
            max_staleness=out.max_staleness,
            mean_staleness=out.mean_staleness,
            inclusion_rate=out.inclusion_rate,
            mean_num_active=out.mean_num_active,
            min_num_active=out.min_num_active,
            final_model_hash=out.final_model_hash,
        )
        for out in outputs
    ]
    return TrainingResult(
        mode=config.mode,
        description=config.describe(),
        epochs=records,
        step_durations=durations,
        projection=projection,
        rank_summaries=summaries,
        wall_time=wall_time,
        gradient_norms=outputs[0].gradient_norms,
    )


def _single_process_comm() -> Communicator:
    """A world-of-one communicator for single-process baselines."""
    from repro.comm.router import Router

    return Communicator(Router(1), 0)
