"""Calibrate :class:`~repro.simtime.network.LogGPParams` to a comm backend.

The default LogGP parameters approximate a Cray Aries interconnect; the
thread backend's "network" is queue handoffs, numpy copies and the GIL,
and the process backend's is loopback TCP — costs that are orders of
magnitude different from each other and from real interconnects.  This
module measures the selected backend directly (``backend=`` on
:func:`calibrate`, resolved through the
:mod:`repro.comm.backend` registry) and fits the four model parameters so
that
:func:`~repro.simtime.collective_model.allreduce_time` /
:func:`~repro.simtime.collective_model.fused_exchange_time` predict the
*measured* latencies, making simtime predictions and thread-backend
measurements comparable in absolute terms.

Measurement design
------------------
Three microbenchmarks run inside one world of the selected backend (so
the contention a real exchange sees at world size *P* is present in the
measurements):

* **ping-pong** — ranks are paired ``(0,1), (2,3), ...`` and all pairs
  bounce a message concurrently; half the round trip estimates
  ``alpha + nbytes * beta``;
* **reduce** — local timing of the reduction operator over ``nbytes``
  arrays estimates ``nbytes * gamma``;
* **allreduce** — full synchronous allreduces across message sizes; the
  model expression of :func:`allreduce_time` is *linear* in the four
  parameters (at ``n_chunks=1``), so each measurement contributes one
  least-squares row and ``collective_overhead`` absorbs the fixed cost
  the point-to-point benchmarks cannot see.

The joint weighted least-squares fit (:func:`fit_loggp`) minimises
*relative* error so the 4 KiB samples are not drowned out by the 4 MiB
ones, and clamps the parameters non-negative (a
:class:`~repro.simtime.network.LogGPParams` rejects negative values).

Per-link-class calibration (two-tier fabrics)
---------------------------------------------
The ``hier`` backend's links come in two classes with wildly different
costs: shm rings within a host, sockets between hosts.  One LogGP fit
cannot describe both, so version-3 profiles carry ``link_params`` — the
standard sweep (run under the backend's default single-host topology,
i.e. pure shm) fits the ``"intra"`` class, and a second ping-pong sweep
under :func:`cross_host_topology` (every pair straddling a simulated
host boundary) fits the ``"inter"`` class.  The autotuner feeds both
into the two-tier cost model
(:func:`repro.simtime.collective_model.hierarchical_fused_exchange_time`)
to pick per-tier fusion thresholds; single-tier backends expose the same
parameters under both keys.

Profiles are JSON-serialisable and cached under a configurable directory
(``REPRO_TUNING_CACHE_DIR`` or ``~/.cache/repro/tuning``), keyed by
backend and world size, so a training run pays the measurement cost once
per (machine, world size).
"""

from __future__ import annotations

import json
import math
import os
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.obs import recorder as _obs
from repro.simtime.collective_model import allreduce_time
from repro.simtime.network import LogGPParams

#: Serialisation format version; bump when the profile schema changes.
#: Version 2 added measured per-codec transform costs (``codec_costs``);
#: version 3 added per-link-class parameters (``link_params``: separate
#: ``intra``/``inter`` LogGP fits for two-tier fabrics).  Old-version
#: caches are treated as absent and remeasured once.
PROFILE_VERSION = 3

#: The link classes a two-tier profile distinguishes.
LINK_CLASSES = ("intra", "inter")


def supported_backends() -> Tuple[str, ...]:
    """Backends a profile can be calibrated against (the live registry)."""
    from repro.comm.backend import available_backends

    return available_backends()

#: Message sizes (bytes) of the full calibration sweep: 4 KiB - 4 MiB.
DEFAULT_SIZES: Tuple[int, ...] = tuple(4 * 1024 * 4 ** i for i in range(6))
#: Reduced sweep for ``--quick`` runs (CI smoke, auto-resolution).  A
#: strict subset of :data:`DEFAULT_SIZES`, so a cached full profile
#: satisfies a quick request while a quick profile never short-circuits
#: a full calibration.
QUICK_SIZES: Tuple[int, ...] = (4 * 1024, 64 * 1024, 1024 * 1024)

_SAMPLE_KINDS = ("pingpong", "reduce", "allreduce")

#: Extra least-squares weight on allreduce rows: the profile's purpose is
#: to predict collective latency, so those residuals matter most.
_ALLREDUCE_WEIGHT = 3.0


class ProfileCacheError(RuntimeError):
    """A cached profile exists but cannot be read or parsed."""


@dataclass(frozen=True)
class CalibrationSample:
    """One measured data point of a calibration sweep."""

    #: ``"pingpong"``, ``"reduce"`` or ``"allreduce"``.
    kind: str
    #: World size the measurement ran under.
    world_size: int
    #: Payload size in bytes.
    nbytes: int
    #: Measured duration in seconds.
    seconds: float
    #: Allreduce algorithm (empty for ping-pong / reduce samples).
    algorithm: str = ""

    def __post_init__(self) -> None:
        if self.kind not in _SAMPLE_KINDS:
            raise ValueError(f"kind must be one of {_SAMPLE_KINDS}, got {self.kind!r}")
        if self.nbytes < 0:
            raise ValueError(f"message size must be non-negative, got {self.nbytes}")
        if not math.isfinite(self.seconds) or self.seconds <= 0:
            raise ValueError(f"seconds must be finite and positive, got {self.seconds}")

    def to_dict(self) -> Dict:
        return {
            "kind": self.kind,
            "world_size": self.world_size,
            "nbytes": self.nbytes,
            "seconds": self.seconds,
            "algorithm": self.algorithm,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "CalibrationSample":
        return cls(
            kind=data["kind"],
            world_size=int(data["world_size"]),
            nbytes=int(data["nbytes"]),
            seconds=float(data["seconds"]),
            algorithm=data.get("algorithm", ""),
        )


# ---------------------------------------------------------------------------
# least-squares fit
# ---------------------------------------------------------------------------
#: Unit vectors of the parameter space; evaluating the (linear) model at
#: each of them yields the design-matrix row of a measurement.
_BASIS = (
    LogGPParams(alpha=1.0, beta=0.0, gamma=0.0, collective_overhead=0.0),
    LogGPParams(alpha=0.0, beta=1.0, gamma=0.0, collective_overhead=0.0),
    LogGPParams(alpha=0.0, beta=0.0, gamma=1.0, collective_overhead=0.0),
    LogGPParams(alpha=0.0, beta=0.0, gamma=0.0, collective_overhead=1.0),
)


def design_row(sample: CalibrationSample) -> np.ndarray:
    """Coefficients of ``(alpha, beta, gamma, collective_overhead)`` for one sample.

    The closed-form cost of every sample kind is linear in the four
    parameters (allreduce only at ``n_chunks=1``), so the predicted time
    of a sample is ``design_row(sample) @ params_vector``.
    """
    if sample.kind == "pingpong":
        # One-way message: alpha + nbytes * beta.
        return np.array([1.0, float(sample.nbytes), 0.0, 0.0])
    if sample.kind == "reduce":
        # Pure reduction arithmetic: nbytes * gamma.
        return np.array([0.0, 0.0, float(sample.nbytes), 0.0])
    return np.array(
        [
            allreduce_time(sample.nbytes, sample.world_size, sample.algorithm, basis)
            for basis in _BASIS
        ]
    )


def predict_sample(sample: CalibrationSample, params: LogGPParams) -> float:
    """Model-predicted duration of ``sample`` under ``params``."""
    vec = np.array([params.alpha, params.beta, params.gamma, params.collective_overhead])
    return float(design_row(sample) @ vec)


def _solve_clamped(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Non-negative least squares via a one-at-a-time active-set pass.

    The most negative parameter is pinned to zero and the reduced system
    re-solved until the solution is feasible (4 unknowns, so at most 4
    passes).
    """
    free = [True] * a.shape[1]
    solution = np.zeros(a.shape[1])
    for _ in range(a.shape[1]):
        idx = [i for i in range(a.shape[1]) if free[i]]
        if not idx:
            break
        sub, *_ = np.linalg.lstsq(a[:, idx], b, rcond=None)
        solution[:] = 0.0
        solution[idx] = sub
        negative = [i for i in idx if solution[i] < 0]
        if not negative:
            break
        free[min(negative, key=lambda i: solution[i])] = False
        solution[:] = 0.0
    return np.maximum(solution, 0.0)


def _minimax_affine(ns: np.ndarray, ts: np.ndarray) -> Tuple[float, float, float]:
    """Best ``t ~ C + S * n`` fit under *worst-case relative* error.

    Returns ``(C, S, e)`` minimising ``max_i |C + S*n_i - t_i| / t_i``
    subject to ``C, S >= 0``.  The optimum of this tiny linear program
    has at most three active constraints, so it is found exactly by
    enumerating the candidate active sets (point triples with
    alternating residual signs, plus the ``C = 0`` / ``S = 0`` boundary
    pairs) — no solver dependency, fully deterministic.
    """

    def error(c: float, s: float) -> float:
        return float(np.max(np.abs(c + s * ns - ts) / ts))

    candidates: List[Tuple[float, float]] = []
    m = len(ns)
    for i in range(m):
        for j in range(i + 1, m):
            # Boundary optima: one parameter pinned at zero, residuals of
            # the two points equioscillating.
            for si, sj in ((1.0, -1.0), (-1.0, 1.0)):
                b = np.array([ts[i], ts[j]])
                # C = 0 boundary: S*n - t = sign * e * t at both points.
                a = np.array([[ns[i], -si * ts[i]], [ns[j], -sj * ts[j]]])
                try:
                    s, _e = np.linalg.solve(a, b)
                    candidates.append((0.0, float(s)))
                except np.linalg.LinAlgError:
                    pass
                # S = 0 boundary: C - t = sign * e * t at both points.
                a = np.array([[1.0, -si * ts[i]], [1.0, -sj * ts[j]]])
                try:
                    c, _e = np.linalg.solve(a, b)
                    candidates.append((float(c), 0.0))
                except np.linalg.LinAlgError:
                    pass
            for k in range(j + 1, m):
                # Interior optima: three points, alternating signs.
                for signs in ((1.0, -1.0, 1.0), (-1.0, 1.0, -1.0)):
                    a = np.array(
                        [
                            [1.0, ns[i], -signs[0] * ts[i]],
                            [1.0, ns[j], -signs[1] * ts[j]],
                            [1.0, ns[k], -signs[2] * ts[k]],
                        ]
                    )
                    b = np.array([ts[i], ts[j], ts[k]])
                    try:
                        c, s, _e = np.linalg.solve(a, b)
                    except np.linalg.LinAlgError:
                        continue
                    candidates.append((float(c), float(s)))
    # Least-squares seed covers the degenerate cases (m < 3, collinear).
    a = np.stack([1.0 / ts, ns / ts], axis=1)
    seed = _solve_clamped(a, np.ones_like(ts))
    candidates.append((float(seed[0]), float(seed[1])))

    best = None
    for c, s in candidates:
        if c < 0 or s < 0 or not np.isfinite(c) or not np.isfinite(s):
            continue
        e = error(c, s)
        if best is None or e < best[2]:
            best = (c, s, e)
    return best if best is not None else (0.0, 0.0, float("inf"))


def fit_loggp(samples: Sequence[CalibrationSample]) -> LogGPParams:
    """Fit the four LogGP parameters to a calibration sweep.

    Two stages:

    1. A joint least-squares solve over *all* rows, scaled by
       ``1 / seconds`` so it minimises relative residuals (the sweep
       spans three decades of absolute time), with allreduce rows
       up-weighted by ``_ALLREDUCE_WEIGHT``.  On self-consistent
       (synthetic) samples this recovers the generating parameters
       exactly and stage 2 cannot improve on it.
    2. When every allreduce sample shares one (world size, algorithm) —
       the shape :func:`calibrate` produces — the model restricted to
       those rows is *affine in the message size*: ``t = C + S*n`` with
       ``C = a*alpha + collective_overhead`` and ``S = k*(beta+gamma)``.
       The exact minimax-relative affine fit (:func:`_minimax_affine`)
       pins ``(C, S)`` to the Chebyshev optimum, and the stage-1
       solution's ping-pong/reduce-informed ratios split ``C`` between
       ``alpha`` and ``collective_overhead`` and ``S`` between ``beta``
       and ``gamma``.  The stage whose worst allreduce error is smaller
       wins.

    Stage 2 is what makes the fitted model track the measured allreduce
    latency across the full size range even though the thread backend's
    cost curve has a cache knee an affine model cannot follow: the
    Chebyshev fit spreads the knee's error evenly instead of sacrificing
    the tail.
    """
    if len(samples) < 4:
        raise ValueError(f"need at least 4 samples to fit 4 parameters, got {len(samples)}")
    rows = np.stack([design_row(s) for s in samples])
    target = np.array([s.seconds for s in samples])
    is_allreduce = np.array([s.kind == "allreduce" for s in samples])
    weights = np.where(is_allreduce, _ALLREDUCE_WEIGHT, 1.0) / target
    joint = _solve_clamped(rows * weights[:, None], target * weights)

    def allreduce_error(vec: np.ndarray) -> float:
        if not is_allreduce.any():
            return float(np.max(np.abs(rows @ vec - target) / target))
        pred = rows[is_allreduce] @ vec
        meas = target[is_allreduce]
        return float(np.max(np.abs(pred - meas) / meas))

    best = joint
    ar_samples = [s for s in samples if s.kind == "allreduce"]
    shapes = {(s.world_size, s.algorithm) for s in ar_samples}
    if len(ar_samples) >= 2 and len(shapes) == 1:
        ar_rows = rows[is_allreduce]
        ns = np.array([float(s.nbytes) for s in ar_samples])
        # t = (a*alpha + d*overhead) + (kb*beta + kg*gamma) * n: the
        # per-message counts a, d and per-byte factors kb, kg are
        # size-independent for a fixed (world size, algorithm) shape.
        a_coeff = float(ar_rows[0, 0])
        d_coeff = float(ar_rows[0, 3])
        kb = float(ar_rows[0, 1] / max(ns[0], 1.0))
        kg = float(ar_rows[0, 2] / max(ns[0], 1.0))
        affine_shape = (
            np.all(ns > 0)
            and np.allclose(ar_rows[:, 0], a_coeff)
            and np.allclose(ar_rows[:, 3], d_coeff)
            and np.allclose(ar_rows[:, 1], kb * ns)
            and np.allclose(ar_rows[:, 2], kg * ns)
            and d_coeff > 0
        )
        if affine_shape and kb + kg > 0:
            c, s, _e = _minimax_affine(ns, target[is_allreduce])
            split = joint[1] + joint[2]
            beta_share = joint[1] / split if split > 0 else 0.5
            denom = kb * beta_share + kg * (1.0 - beta_share)
            if denom <= 0:  # the shape only exercises the other parameter
                beta_share = 1.0 if kb > 0 else 0.0
                denom = kb * beta_share + kg * (1.0 - beta_share)
            scale = s / denom
            alpha = min(joint[0], c / a_coeff) if a_coeff > 0 else joint[0]
            refined = np.array(
                [
                    alpha,
                    scale * beta_share,
                    scale * (1.0 - beta_share),
                    max(0.0, (c - a_coeff * alpha) / d_coeff),
                ]
            )
            if allreduce_error(refined) < allreduce_error(best):
                best = refined
    return LogGPParams(
        alpha=float(best[0]),
        beta=float(best[1]),
        gamma=float(best[2]),
        collective_overhead=float(best[3]),
    )


def max_relative_error(
    samples: Sequence[CalibrationSample], params: LogGPParams, kind: str = "allreduce"
) -> float:
    """Worst ``|predicted - measured| / measured`` over samples of ``kind``."""
    errors = [
        abs(predict_sample(s, params) - s.seconds) / s.seconds
        for s in samples
        if s.kind == kind
    ]
    return max(errors) if errors else float("nan")


# ---------------------------------------------------------------------------
# thread-backend microbenchmarks
# ---------------------------------------------------------------------------
def _iterations_for(nbytes: int, base: int) -> int:
    """More repetitions for small (noisy, fast) payloads, fewer for huge ones."""
    return max(2, min(4 * base, base * (256 * 1024) // max(nbytes, 1) + base))


def _pingpong_worker(comm, sizes: Sequence[int], base_iterations: int):
    results: Dict[int, float] = {}
    partner = comm.rank ^ 1
    active = partner < comm.size
    for size_index, nbytes in enumerate(sizes):
        payload = np.zeros(max(1, nbytes // 8), dtype=np.float64)
        comm.barrier()
        if not active:
            continue
        iterations = _iterations_for(nbytes, base_iterations)
        best = float("inf")
        for it in range(iterations + 1):
            tag = size_index * 10_000 + it
            if comm.rank < partner:
                start = time.perf_counter()
                comm.send(payload, partner, tag=tag)
                comm.recv(source=partner, tag=tag)
                elapsed = (time.perf_counter() - start) / 2.0
                if it > 0:  # first round trip is warmup
                    best = min(best, elapsed)
            else:
                comm.recv(source=partner, tag=tag)
                comm.send(payload, partner, tag=tag)
        if comm.rank < partner:
            results[nbytes] = best
    return results


def _allreduce_worker(comm, sizes: Sequence[int], algorithm: str, base_iterations: int):
    from repro.collectives.sync import allreduce

    results: Dict[int, List[float]] = {}
    for nbytes in sizes:
        payload = np.full(max(1, nbytes // 8), float(comm.rank), dtype=np.float64)
        comm.barrier()
        allreduce(comm, payload, algorithm=algorithm)  # warmup
        times: List[float] = []
        for _ in range(_iterations_for(nbytes, base_iterations)):
            start = time.perf_counter()
            allreduce(comm, payload, algorithm=algorithm)
            times.append(time.perf_counter() - start)
        results[nbytes] = times
    return results


def measure_pingpong(
    world_size: int,
    sizes: Sequence[int],
    base_iterations: int = 8,
    backend: Optional[str] = None,
    backend_opts: Optional[Dict] = None,
) -> List[CalibrationSample]:
    """Concurrent pairwise ping-pong inside a ``world_size`` world.

    All pairs exchange simultaneously so the per-message cost includes
    the scheduling (and, on the thread backend, GIL) contention a
    collective at this world size sees.  ``backend_opts`` is forwarded
    to the launch (e.g. a ``host_topology`` that makes every pair an
    inter-host pair — see :func:`measure_inter_link`).
    """
    from repro.comm.backend import launch

    outputs = launch(
        _pingpong_worker, world_size, sizes, base_iterations, backend=backend,
        backend_opts=backend_opts,
    )
    samples = []
    for nbytes in sizes:
        times = [out[nbytes] for out in outputs if nbytes in out]
        samples.append(
            CalibrationSample(
                kind="pingpong",
                world_size=world_size,
                nbytes=int(nbytes),
                seconds=float(np.median(times)),
            )
        )
    return samples


def measure_reduce(
    sizes: Sequence[int], base_iterations: int = 8, world_size: int = 1
) -> List[CalibrationSample]:
    """Local cost of the reduction operator over ``nbytes`` operands.

    Only sizes of at least 64 KiB are measured (below that the constant
    numpy-dispatch overhead, which the model attributes to ``alpha`` /
    ``collective_overhead``, dominates the per-byte term the sample is
    supposed to estimate).
    """
    samples = []
    for nbytes in sizes:
        if nbytes < 64 * 1024:
            continue
        a = np.random.default_rng(0).normal(size=max(1, nbytes // 8))
        b = np.random.default_rng(1).normal(size=a.size)
        np.add(a, b)  # warmup
        best = float("inf")
        for _ in range(_iterations_for(nbytes, base_iterations)):
            start = time.perf_counter()
            np.add(a, b)
            best = min(best, time.perf_counter() - start)
        samples.append(
            CalibrationSample(
                kind="reduce", world_size=world_size, nbytes=int(nbytes), seconds=best
            )
        )
    return samples


def measure_codec_costs(
    nbytes: int = 1 << 20,
    base_iterations: int = 4,
    codecs: Optional[Sequence[str]] = None,
) -> Dict[str, Dict[str, float]]:
    """Measured encode/decode seconds-per-dense-byte of each codec.

    The class-attribute constants on :class:`~repro.compression.base.
    GradientCodec` are rough numpy-throughput numbers for a commodity
    CPU; this measures the *live* machine (the box the tuning profile
    describes) so the autotuner's compression terms use real transform
    costs.  Costs are per dense byte — the unit the simtime
    :class:`~repro.simtime.collective_model.CompressionModel` charges.

    The identity codec (``"none"``) is skipped: its wire path moves the
    dense buffer untransformed and the model charges it nothing.
    """
    from repro.compression import available_codecs, get_codec

    if codecs is None:
        codecs = [name for name in available_codecs() if name != "none"]
    dense = np.random.default_rng(0).standard_normal(max(1, nbytes // 8))
    dense_bytes = float(dense.nbytes)
    costs: Dict[str, Dict[str, float]] = {}
    for name in codecs:
        codec = get_codec(name)
        encoded = codec.encode(dense)  # warmup (and the decode operand)
        encode_best = float("inf")
        decode_best = float("inf")
        codec.decode(encoded)  # warmup
        for _ in range(max(2, base_iterations)):
            start = time.perf_counter()
            encoded = codec.encode(dense)
            encode_best = min(encode_best, time.perf_counter() - start)
            start = time.perf_counter()
            codec.decode(encoded)
            decode_best = min(decode_best, time.perf_counter() - start)
        costs[codec.name] = {
            "encode_seconds_per_byte": encode_best / dense_bytes,
            "decode_seconds_per_byte": decode_best / dense_bytes,
        }
    return costs


def measure_allreduce(
    world_size: int,
    sizes: Sequence[int],
    algorithm: str = "ring",
    base_iterations: int = 5,
    backend: Optional[str] = None,
) -> List[CalibrationSample]:
    """Measured synchronous allreduce latency across message sizes.

    The ranks run repetitions in lockstep (an allreduce is a full
    synchronisation point), so the completion time of repetition *i* is
    the maximum across ranks of its per-rank duration; the reported
    latency is the *median* completion over repetitions — minima reward
    one lucky scheduler interleaving, means are dragged by preemption
    outliers, the median is what a training step actually sees.
    """
    from repro.comm.backend import launch

    outputs = launch(
        _allreduce_worker, world_size, sizes, algorithm, base_iterations,
        backend=backend,
    )
    samples = []
    for nbytes in sizes:
        per_rank = np.array([out[nbytes] for out in outputs])
        completion = float(np.median(per_rank.max(axis=0)))
        samples.append(
            CalibrationSample(
                kind="allreduce",
                world_size=world_size,
                nbytes=int(nbytes),
                seconds=float(completion),
                algorithm=algorithm,
            )
        )
    return samples


def cross_host_topology(world_size: int) -> str:
    """A rank -> host spec under which every ping-pong pair crosses hosts.

    The ping-pong pairs ranks ``(0, 1), (2, 3), ...`` (partner =
    ``rank ^ 1``), so alternating host labels put each pair's ranks on
    different hosts: every measured message travels an inter-host link
    of the ``hier`` transport (a loopback socket when the topology is
    simulated on one machine, the real fabric across machines).
    """
    return ",".join(str(r % 2) for r in range(world_size))


def measure_inter_link(
    world_size: int,
    sizes: Sequence[int],
    base_iterations: int = 8,
    backend: str = "hier",
    reduce_samples: Optional[Sequence[CalibrationSample]] = None,
    anchor: Optional[LogGPParams] = None,
) -> LogGPParams:
    """Fit the *inter-host* link class of a two-tier backend.

    Runs the concurrent pairwise ping-pong under
    :func:`cross_host_topology` — every pair straddles the simulated
    host boundary, so ``alpha``/``beta`` describe the socket tier —
    and fits them jointly with (shared, link-independent) local
    ``reduce`` samples.  The fixed ``collective_overhead`` has no
    inter-link anchor (the hierarchical collective arms once, on the
    intra tier), so it is inherited from ``anchor`` when given.
    """
    samples = list(
        measure_pingpong(
            world_size, sizes, base_iterations=base_iterations, backend=backend,
            backend_opts={"host_topology": cross_host_topology(world_size)},
        )
    )
    if reduce_samples is None:
        reduce_samples = measure_reduce(
            sizes, base_iterations=base_iterations, world_size=world_size
        )
    samples += list(reduce_samples)
    fitted = fit_loggp(samples)
    if anchor is not None:
        fitted = replace(fitted, collective_overhead=anchor.collective_overhead)
    return fitted


# ---------------------------------------------------------------------------
# profiles and the cache
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class CalibratedProfile:
    """Fitted LogGP parameters for one (backend, world size) pair."""

    backend: str
    world_size: int
    params: LogGPParams
    #: Allreduce algorithm the calibration sweep measured.
    algorithm: str
    #: The raw measurements the fit was computed from.
    samples: Tuple[CalibrationSample, ...] = ()
    #: Worst relative error of the fitted model on the allreduce samples.
    max_rel_error: float = float("nan")
    #: Live-measured codec transform costs on this machine, keyed by
    #: codec name: ``{"fp16": {"encode_seconds_per_byte": ...,
    #: "decode_seconds_per_byte": ...}, ...}`` (see
    #: :func:`measure_codec_costs`).  Used by :meth:`compression_model`
    #: so the autotuner charges measured — not hardcoded — costs.
    codec_costs: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Per-link-class parameters of a two-tier fabric, keyed by
    #: :data:`LINK_CLASSES` (``"intra"``/``"inter"``).  Single-tier
    #: backends store ``params`` under both keys (or leave the dict
    #: empty — :meth:`link` falls back to ``params``), so every profile
    #: answers per-tier queries.
    link_params: Dict[str, LogGPParams] = field(default_factory=dict)
    version: int = PROFILE_VERSION

    def link(self, link_class: str) -> LogGPParams:
        """Parameters of one link class (``params`` when unmeasured)."""
        if link_class not in LINK_CLASSES:
            raise ValueError(
                f"unknown link class {link_class!r}; expected one of {LINK_CLASSES}"
            )
        return self.link_params.get(link_class, self.params)

    @property
    def is_two_tier(self) -> bool:
        """Whether the intra and inter tiers were measured separately."""
        return self.link("intra") != self.link("inter")

    def compression_model(self, codec):
        """Cost-model view of ``codec`` with this machine's measured costs.

        Falls back to the codec's class-attribute constants for any
        codec the profile has no measurement for (e.g. one registered
        after the profile was cached).
        """
        model = codec.cost_model()
        measured = (self.codec_costs or {}).get(codec.name)
        if not measured:
            return model
        return replace(
            model,
            encode_seconds_per_byte=float(measured["encode_seconds_per_byte"]),
            decode_seconds_per_byte=float(measured["decode_seconds_per_byte"]),
        )

    def to_dict(self) -> Dict:
        return {
            "version": self.version,
            "backend": self.backend,
            "world_size": self.world_size,
            "algorithm": self.algorithm,
            "params": {
                "alpha": self.params.alpha,
                "beta": self.params.beta,
                "gamma": self.params.gamma,
                "collective_overhead": self.params.collective_overhead,
            },
            "max_rel_error": self.max_rel_error,
            "codec_costs": self.codec_costs or {},
            "link_params": {
                name: {
                    "alpha": p.alpha,
                    "beta": p.beta,
                    "gamma": p.gamma,
                    "collective_overhead": p.collective_overhead,
                }
                for name, p in (self.link_params or {}).items()
            },
            "samples": [s.to_dict() for s in self.samples],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "CalibratedProfile":
        params = data["params"]
        return cls(
            backend=data["backend"],
            world_size=int(data["world_size"]),
            params=LogGPParams(
                alpha=float(params["alpha"]),
                beta=float(params["beta"]),
                gamma=float(params["gamma"]),
                collective_overhead=float(params["collective_overhead"]),
            ),
            algorithm=data.get("algorithm", "recursive_doubling"),
            samples=tuple(CalibrationSample.from_dict(s) for s in data.get("samples", ())),
            max_rel_error=float(data.get("max_rel_error", float("nan"))),
            codec_costs={
                str(name): {
                    "encode_seconds_per_byte": float(cost["encode_seconds_per_byte"]),
                    "decode_seconds_per_byte": float(cost["decode_seconds_per_byte"]),
                }
                for name, cost in (data.get("codec_costs") or {}).items()
            },
            link_params={
                str(name): LogGPParams(
                    alpha=float(p["alpha"]),
                    beta=float(p["beta"]),
                    gamma=float(p["gamma"]),
                    collective_overhead=float(p["collective_overhead"]),
                )
                for name, p in (data.get("link_params") or {}).items()
            },
            version=int(data.get("version", 0)),
        )

    def save(self, path: Path) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(path.suffix + ".tmp")
        tmp.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True))
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, path: Path) -> "CalibratedProfile":
        path = Path(path)
        try:
            data = json.loads(path.read_text())
            profile = cls.from_dict(data)
            profile.params.validate()
            return profile
        except (OSError, ValueError, KeyError, TypeError) as exc:
            raise ProfileCacheError(f"cannot read cached profile {path}: {exc}") from exc


def default_cache_dir() -> Path:
    """Profile-cache directory: ``$REPRO_TUNING_CACHE_DIR`` or ``~/.cache/repro/tuning``."""
    env = os.environ.get("REPRO_TUNING_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro" / "tuning"


def profile_path(
    world_size: int, backend: str = "thread", cache_dir: Optional[Path] = None
) -> Path:
    """Cache file of the profile for ``(backend, world_size)``."""
    base = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    return base / f"{backend}-p{world_size}.json"


def load_profile(
    world_size: int, backend: str = "thread", cache_dir: Optional[Path] = None
) -> Optional[CalibratedProfile]:
    """Load a cached profile; ``None`` if absent or written by an old schema.

    A file that exists but cannot be parsed raises
    :class:`ProfileCacheError` — silent recalibration would mask cache
    corruption (the CI smoke job fails on exactly this).
    """
    path = profile_path(world_size, backend, cache_dir)
    if not path.exists():
        return None
    profile = CalibratedProfile.load(path)
    if profile.version != PROFILE_VERSION:
        return None
    if profile.backend != backend or profile.world_size != world_size:
        raise ProfileCacheError(
            f"cached profile {path} is keyed for "
            f"({profile.backend!r}, P={profile.world_size}), expected "
            f"({backend!r}, P={world_size})"
        )
    return profile


def calibrate(
    world_size: int,
    backend: Optional[str] = None,
    algorithm: str = "ring",
    sizes: Optional[Sequence[int]] = None,
    quick: bool = False,
    cache_dir: Optional[Path] = None,
    force: bool = False,
    base_iterations: Optional[int] = None,
) -> CalibratedProfile:
    """Measure, fit and cache the LogGP profile for one world size.

    Parameters
    ----------
    world_size:
        Ranks of the world the measurements run under (>= 2).
    backend:
        Communication backend the measurements run *on* — the profile is
        keyed by the resolved live handle's name, so ``"thread"`` and
        ``"process"`` profiles cache separately.  ``None`` uses the
        process-wide default backend.
    algorithm:
        Allreduce algorithm of the calibration sweep (the fitted
        parameters apply to every algorithm; this one anchors the fit).
        Ring is the default: it is the bandwidth-optimal algorithm the
        fused exchange pipelines, and its measured cost curve is the
        closest to affine-in-size on the thread backend, so the LogGP
        family fits it tightest (recursive doubling's full-payload
        rounds hit a cache knee the model cannot follow).
    sizes:
        Payload sizes in bytes; defaults to :data:`DEFAULT_SIZES`
        (:data:`QUICK_SIZES` with ``quick=True``).
    quick:
        Reduced sweep for CI smoke tests and on-the-fly resolution of
        ``"auto"`` config values.
    cache_dir, force:
        Profile-cache location and whether to remeasure despite a cached
        profile being present.
    """
    from repro.comm.backend import get_backend

    # Resolve through the registry and key the cache by the *live*
    # handle's name (not the raw argument): an unknown backend fails here,
    # and a ``None``/default argument still lands in the right cache slot.
    backend = get_backend(backend).name
    if world_size < 2:
        raise ValueError(f"calibration needs world_size >= 2, got {world_size}")
    if sizes is None:
        sizes = QUICK_SIZES if quick else DEFAULT_SIZES
    if base_iterations is None:
        base_iterations = 3 if quick else 6
    if not force:
        cached = load_profile(world_size, backend, cache_dir)
        # A cache hit must cover the requested sweep: a quick profile
        # (three sizes) must not silently satisfy a full calibration —
        # the 4 KiB - 4 MiB accuracy claim would then go unmeasured.
        if cached is not None and cached.algorithm == algorithm:
            covered = {s.nbytes for s in cached.samples if s.kind == "allreduce"}
            if set(int(n) for n in sizes) <= covered:
                return cached

    samples: List[CalibrationSample] = []
    with _obs.span("calibrate-pingpong", "tuning", world_size=world_size):
        samples += measure_pingpong(
            world_size, sizes, base_iterations=base_iterations, backend=backend
        )
    with _obs.span("calibrate-reduce", "tuning"):
        reduce_samples = measure_reduce(
            sizes, base_iterations=base_iterations, world_size=world_size
        )
    samples += reduce_samples
    with _obs.span("calibrate-allreduce", "tuning", algorithm=algorithm):
        samples += measure_allreduce(
            world_size, sizes, algorithm=algorithm, base_iterations=base_iterations,
            backend=backend,
        )
    with _obs.span("calibrate-fit", "tuning", samples=len(samples)):
        params = fit_loggp(samples)
    # Per-link-class parameters.  The main sweep above ran the backend's
    # default topology — single-host for ``hier``, i.e. pure shm rings —
    # so its fit IS the intra-host tier.  Two-tier backends additionally
    # measure the inter-host tier over a simulated cross-host topology;
    # single-tier backends see the same parameters through both keys.
    link_params = {"intra": params, "inter": params}
    if backend == "hier":
        with _obs.span("calibrate-inter-link", "tuning"):
            link_params["inter"] = measure_inter_link(
                world_size, sizes, base_iterations=base_iterations, backend=backend,
                reduce_samples=reduce_samples, anchor=params,
            )
    with _obs.span("calibrate-codec", "tuning", nbytes=max(sizes)):
        codec_costs = measure_codec_costs(
            nbytes=max(sizes), base_iterations=base_iterations
        )
    profile = CalibratedProfile(
        backend=backend,
        world_size=world_size,
        params=params,
        algorithm=algorithm,
        samples=tuple(samples),
        max_rel_error=max_relative_error(samples, params),
        codec_costs=codec_costs,
        link_params=link_params,
    )
    profile.save(profile_path(world_size, backend, cache_dir))
    return profile
