"""Cost-model calibration and fusion auto-tuning.

The LogGP parameters shipped in :mod:`repro.simtime.network` are
Piz-Daint-flavoured guesses: good enough to reproduce the *shape* of the
paper's latency figures, but not comparable in absolute terms with the
thread-backend measurements.  This package closes that gap:

``repro.tuning.calibration``
    Runs ping-pong / reduce / allreduce microbenchmarks on the selected
    communication backend (``"thread"`` or ``"process"``, resolved
    through the :mod:`repro.comm.backend` registry) and
    least-squares-fits ``alpha``, ``beta``, ``gamma`` and
    ``collective_overhead`` into a JSON-cacheable
    :class:`~repro.tuning.calibration.CalibratedProfile` keyed by
    world size and the live backend name.
``repro.tuning.autotune``
    Searches the ``fusion_threshold_bytes x pipeline_chunks`` grid with
    the calibrated :func:`~repro.simtime.collective_model.fused_exchange_time`
    model (optionally cross-checked against live thread-backend trials)
    and returns a :class:`~repro.tuning.autotune.TunedPlan` per
    (world size, gradient bytes, algorithm).  ``TrainingConfig`` values
    of ``"auto"`` are resolved through this path.
"""

from repro.tuning.calibration import (
    CalibratedProfile,
    CalibrationSample,
    ProfileCacheError,
    calibrate,
    default_cache_dir,
    fit_loggp,
    load_profile,
    profile_path,
)
from repro.tuning.autotune import (
    DEFAULT_CHUNK_GRID,
    DEFAULT_FIXED_THRESHOLD_BYTES,
    DEFAULT_THRESHOLD_GRID,
    TunedPlan,
    autotune,
    predict_exchange_time,
    resolve_auto_fusion,
)

__all__ = [
    "CalibratedProfile",
    "CalibrationSample",
    "ProfileCacheError",
    "calibrate",
    "default_cache_dir",
    "fit_loggp",
    "load_profile",
    "profile_path",
    "DEFAULT_CHUNK_GRID",
    "DEFAULT_FIXED_THRESHOLD_BYTES",
    "DEFAULT_THRESHOLD_GRID",
    "TunedPlan",
    "autotune",
    "predict_exchange_time",
    "resolve_auto_fusion",
]
