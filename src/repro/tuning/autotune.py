"""Auto-tune ``fusion_threshold_bytes`` and ``pipeline_chunks``.

Horovod ships a fixed ``HOROVOD_FUSION_THRESHOLD`` (64 MiB) and leaves
the operator to tune it; PR 1 of this repo hardcoded a 64 KiB default in
its benchmarks.  The right setting depends on the world size, the
gradient size, the algorithm and the (calibrated) cost of a message —
exactly what :func:`~repro.simtime.collective_model.fused_exchange_time`
models.  This module searches the ``threshold x chunks`` grid with the
calibrated model, optionally cross-checks the best candidates against a
handful of live thread-backend trials, and returns a :class:`TunedPlan`.

``TrainingConfig`` accepts ``fusion_threshold_bytes="auto"`` /
``pipeline_chunks="auto"``; :func:`resolve_auto_fusion` (called by
:func:`repro.training.runner.train_distributed`) turns those into
concrete values through the profile cache.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

import numpy as np

from repro.simtime.collective_model import (
    CompressionModel,
    fused_exchange_time,
    hierarchical_fused_exchange_time,
    sharded_exchange_time,
)
from repro.simtime.network import LogGPParams
from repro.tuning.calibration import CalibratedProfile, calibrate

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.training.config import TrainingConfig

#: The PR-1 fixed default the auto-tuner is benchmarked against
#: (``benchmarks/bench_fusion_pipeline.py`` used 64 KiB buffers).
DEFAULT_FIXED_THRESHOLD_BYTES = 64 * 1024
#: Fusion-buffer capacities searched by default: 16 KiB - 4 MiB.
DEFAULT_THRESHOLD_GRID: Tuple[int, ...] = tuple(16 * 1024 * 2 ** i for i in range(9))
#: Pipeline chunk counts searched by default.
DEFAULT_CHUNK_GRID: Tuple[int, ...] = (1, 2, 4, 8, 16)

#: Gradients travel as float64 on the thread substrate.
_BYTES_PER_ELEMENT = 8


@dataclass(frozen=True)
class TunedPlan:
    """Recommended fusion configuration for one exchange shape."""

    world_size: int
    gradient_bytes: int
    algorithm: str
    fusion_threshold_bytes: int
    pipeline_chunks: int
    #: Modelled exchange duration under the recommendation (seconds).
    predicted_time: float
    #: Modelled duration of the fixed 64 KiB / 1-chunk default (seconds).
    baseline_time: float
    #: Name of the gradient codec the plan was tuned for (the baseline
    #: above is modelled under the *same* codec).
    compression: str = "none"
    #: Live thread-backend duration of the recommendation, when the grid
    #: search was cross-checked with real trials (``NaN`` otherwise).
    measured_time: float = float("nan")
    #: Live duration of the fixed default under the same trials (``NaN``
    #: when no live cross-check ran).
    measured_baseline_time: float = float("nan")
    #: Host topology the plan was scored against (``None`` = flat):
    #: ranks per host, e.g. ``(4, 4)`` for two hosts of four.  Multi-host
    #: plans were scored with the two-tier cost model and per-link-class
    #: parameters.
    ranks_per_host: Optional[Tuple[int, ...]] = None

    @property
    def num_buckets(self) -> int:
        return _bucket_count(self.gradient_bytes, self.fusion_threshold_bytes,
                             self._compression_model)

    @property
    def speedup(self) -> float:
        """Modelled speedup over the fixed 64 KiB / 1-chunk default."""
        return self.baseline_time / self.predicted_time

    @property
    def measured_speedup(self) -> float:
        """Live-trial speedup over the fixed default (``NaN`` without trials)."""
        return self.measured_baseline_time / self.measured_time

    #: Cost-model view of the codec, set by :func:`autotune`.  Only its
    #: ``wire_scale`` matters here (it recovers the encoded bucket
    #: count), so serialisation keeps that one number.
    _compression_model: Optional[CompressionModel] = None

    def to_dict(self) -> Dict:
        return {
            "world_size": self.world_size,
            "compression": self.compression,
            "compression_wire_scale": (
                1.0
                if self._compression_model is None
                else self._compression_model.wire_scale
            ),
            "gradient_bytes": self.gradient_bytes,
            "algorithm": self.algorithm,
            "fusion_threshold_bytes": self.fusion_threshold_bytes,
            "pipeline_chunks": self.pipeline_chunks,
            "predicted_time": self.predicted_time,
            "baseline_time": self.baseline_time,
            "measured_time": self.measured_time,
            "measured_baseline_time": self.measured_baseline_time,
            "ranks_per_host": (
                None if self.ranks_per_host is None else list(self.ranks_per_host)
            ),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "TunedPlan":
        compression = str(data.get("compression", "none"))
        wire_scale = float(data.get("compression_wire_scale", 1.0))
        model = None
        if compression != "none" or wire_scale != 1.0:
            model = CompressionModel(name=compression, wire_scale=wire_scale)
        return cls(
            world_size=int(data["world_size"]),
            gradient_bytes=int(data["gradient_bytes"]),
            algorithm=data["algorithm"],
            fusion_threshold_bytes=int(data["fusion_threshold_bytes"]),
            pipeline_chunks=int(data["pipeline_chunks"]),
            compression=compression,
            predicted_time=float(data["predicted_time"]),
            baseline_time=float(data["baseline_time"]),
            measured_time=float(data.get("measured_time", float("nan"))),
            measured_baseline_time=float(
                data.get("measured_baseline_time", float("nan"))
            ),
            ranks_per_host=(
                None
                if data.get("ranks_per_host") is None
                else tuple(int(n) for n in data["ranks_per_host"])
            ),
            _compression_model=model,
        )


def _bucket_count(
    gradient_bytes: int,
    threshold: int,
    compression: Optional[CompressionModel] = None,
) -> int:
    """Bucket count when ``threshold`` budgets the encoded bucket size."""
    wire_bytes = int(gradient_bytes)
    if compression is not None:
        wire_bytes = max(1, int(gradient_bytes * compression.wire_scale))
    return max(1, -(-wire_bytes // int(threshold)))


def plan_bucket_bytes(
    gradient_bytes: int,
    threshold: int,
    compression: Optional[CompressionModel] = None,
) -> List[float]:
    """Near-equal per-bucket *dense* byte sizes, mirroring ``GradientBucketer.from_flat``."""
    if gradient_bytes < 1:
        raise ValueError(f"gradient_bytes must be >= 1, got {gradient_bytes}")
    if threshold < 1:
        raise ValueError(f"fusion_threshold_bytes must be >= 1, got {threshold}")
    count = _bucket_count(gradient_bytes, threshold, compression)
    return [gradient_bytes / count] * count


def predict_exchange_time(
    params: LogGPParams,
    world_size: int,
    gradient_bytes: int,
    algorithm: str = "ring",
    fusion_threshold_bytes: int = DEFAULT_FIXED_THRESHOLD_BYTES,
    pipeline_chunks: int = 1,
    compression: Optional[CompressionModel] = None,
    ranks_per_host: Optional[Sequence[int]] = None,
    inter_params: Optional[LogGPParams] = None,
    sharding: str = "none",
) -> float:
    """Modelled duration of one bucketed gradient exchange.

    With ``compression``, the fusion threshold budgets the *encoded*
    bucket size (mirroring the exchange's wire-width bucketing), and the
    codec's wire/transform terms enter the cost model.

    ``sharding="zero1"`` scores the ZeRO-1 reduce-scatter/allgather
    exchange (:func:`~repro.simtime.collective_model.sharded_exchange_time`)
    instead: the configured allreduce ``algorithm`` is mapped onto the
    matching sharded schedule, and multi-host fabrics are approximated by
    the flat ring at the full world size.

    ``ranks_per_host`` with more than one host scores the *two-tier*
    schedules the exchange runs on a multi-host fabric
    (:func:`~repro.simtime.collective_model.hierarchical_fused_exchange_time`):
    ``params`` then describes the intra-host tier and ``inter_params``
    the inter-host tier (a calibrated profile's ``link("inter")``;
    defaults to ``params``).  Dense and reduce-closed compressed buckets
    route hierarchically, mirroring
    :class:`~repro.training.exchange.SynchronousExchange`; codecs on the
    allgather path stay flat, exactly like the implementation.
    """
    bucket_bytes = plan_bucket_bytes(
        gradient_bytes, fusion_threshold_bytes, compression
    )
    if sharding == "zero1":
        return sharded_exchange_time(
            bucket_bytes,
            world_size,
            algorithm="halving" if algorithm == "rabenseifner" else "ring",
            params=params,
            n_chunks=pipeline_chunks,
            compression=compression,
        )
    multi_host = ranks_per_host is not None and len(ranks_per_host) > 1
    if multi_host and (
        compression is None or compression.is_identity or compression.reduce_closed
    ):
        inter = inter_params if inter_params is not None else params
        if compression is not None and not compression.is_identity:
            # Dense intra tiers, encoded leader ring; the leaders pay one
            # encode + one decode of the dense bucket (reduce-closed).
            transform = sum(
                b
                * (
                    compression.encode_seconds_per_byte
                    + compression.decode_seconds_per_byte
                )
                for b in bucket_bytes
            )
            return transform + hierarchical_fused_exchange_time(
                bucket_bytes,
                ranks_per_host,
                params,
                inter,
                n_chunks=pipeline_chunks,
                inter_scale=compression.wire_scale,
            )
        return hierarchical_fused_exchange_time(
            bucket_bytes, ranks_per_host, params, inter, n_chunks=pipeline_chunks
        )
    return fused_exchange_time(
        bucket_bytes,
        world_size,
        algorithm,
        params,
        n_chunks=pipeline_chunks,
        compression=compression,
    )


def _measure_exchange(
    world_size: int,
    num_elements: int,
    algorithm: str,
    fusion_threshold_bytes: int,
    pipeline_chunks: int,
    iterations: int = 3,
    backend: Optional[str] = None,
    compression: Optional[str] = None,
    backend_opts: Optional[Dict] = None,
) -> float:
    """Live wall-clock of one synchronous exchange (seconds).

    Runs on ``backend`` (``None`` = the process-wide default).  Per rank
    the minimum over ``iterations`` is taken, then the maximum across
    ranks (the exchange ends when the slowest rank holds the averaged
    gradient).
    """
    from repro.comm.backend import launch
    from repro.training.exchange import SynchronousExchange

    def worker(comm):
        exchange = SynchronousExchange(
            comm,
            algorithm=algorithm,
            fusion_threshold_bytes=fusion_threshold_bytes,
            pipeline_chunks=pipeline_chunks,
            compression=compression,
        )
        gradient = np.full(num_elements, float(comm.rank), dtype=np.float64)
        exchange.exchange(gradient)  # warmup
        best = float("inf")
        for _ in range(iterations):
            comm.barrier()
            start = time.perf_counter()
            exchange.exchange(gradient)
            best = min(best, time.perf_counter() - start)
        return best

    return float(
        max(launch(worker, world_size, backend=backend, backend_opts=backend_opts))
    )


def autotune(
    params: LogGPParams,
    world_size: int,
    gradient_bytes: int,
    algorithm: str = "ring",
    thresholds: Optional[Sequence[int]] = None,
    chunks: Optional[Sequence[int]] = None,
    live_trials: int = 0,
    live_iterations: int = 3,
    backend: Optional[str] = None,
    compression: Optional[str] = None,
    compression_model: Optional[CompressionModel] = None,
    ranks_per_host: Optional[Sequence[int]] = None,
    inter_params: Optional[LogGPParams] = None,
    sharding: str = "none",
) -> TunedPlan:
    """Pick ``(fusion_threshold_bytes, pipeline_chunks)`` for one exchange shape.

    The full ``thresholds x chunks`` grid is scored with the calibrated
    :func:`fused_exchange_time` model; candidates that produce the same
    (bucket count, chunk count) pair are deduplicated.  With
    ``live_trials > 0`` the ``live_trials`` best-scoring candidates are
    additionally measured live on ``backend`` (``None`` = the default)
    and the measured winner is returned — the model proposes, the
    backend disposes.

    The default grids contain the fixed 64 KiB / 1-chunk configuration,
    so (unless the caller restricts the search away from it) the
    recommendation is never predicted to be slower than the default.

    ``compression`` names a gradient codec (spec strings allowed): the
    grid is scored with the codec's wire/transform terms, the fusion
    threshold budgets *encoded* bucket bytes (mirroring the exchange),
    the fixed-default baseline is modelled under the *same* codec, and
    live trials run the compressed exchange.  ``compression_model``
    overrides the cost-model view derived from the codec (tests).

    ``ranks_per_host`` (more than one host) scores the grid with the
    two-tier cost model — ``params`` as the intra tier, ``inter_params``
    as the inter tier — so the recommendation is a *per-tier* fusion
    threshold: the knee moves because only the leader ring pays the slow
    links.  Live trials then run on the matching simulated topology.

    ``sharding="zero1"`` scores the grid with the sharded-exchange model
    (:func:`predict_exchange_time` routes to
    :func:`~repro.simtime.collective_model.sharded_exchange_time`); live
    trials are skipped — the measurement harness runs the dense exchange
    and would dispose with the wrong schedule.
    """
    if world_size < 1:
        raise ValueError(f"size must be >= 1, got {world_size}")
    if ranks_per_host is not None:
        ranks_per_host = tuple(int(n) for n in ranks_per_host)
        if sum(ranks_per_host) != world_size:
            raise ValueError(
                f"ranks_per_host {list(ranks_per_host)} covers "
                f"{sum(ranks_per_host)} rank(s), world has {world_size}"
            )
    if gradient_bytes < 1:
        raise ValueError(f"gradient_bytes must be >= 1, got {gradient_bytes}")
    if live_trials < 0:
        raise ValueError(f"live_trials must be non-negative, got {live_trials}")
    if sharding == "zero1":
        live_trials = 0
    thresholds = tuple(thresholds) if thresholds is not None else DEFAULT_THRESHOLD_GRID
    chunks = tuple(chunks) if chunks is not None else DEFAULT_CHUNK_GRID
    if not thresholds or not chunks:
        raise ValueError(
            f"thresholds and chunks must not be empty, "
            f"got {thresholds!r} / {chunks!r}"
        )
    if any(t < 1 for t in thresholds):
        raise ValueError(f"fusion thresholds must be >= 1, got {list(thresholds)}")
    if any(c < 1 for c in chunks):
        raise ValueError(f"pipeline chunk counts must be >= 1, got {list(chunks)}")
    codec_name = "none"
    if compression_model is None and compression is not None:
        from repro.compression import get_codec

        codec = get_codec(compression)
        codec_name = codec.name
        compression_model = codec.cost_model()
    elif compression_model is not None:
        codec_name = compression_model.name

    baseline_time = predict_exchange_time(
        params, world_size, gradient_bytes, algorithm,
        DEFAULT_FIXED_THRESHOLD_BYTES, 1, compression_model,
        ranks_per_host=ranks_per_host, inter_params=inter_params,
        sharding=sharding,
    )

    # Score the grid; dedupe candidates that bucket identically.
    seen: Dict[Tuple[int, int], Tuple[float, int, int]] = {}
    grid = list(dict.fromkeys(thresholds))
    chunk_grid = list(dict.fromkeys(chunks))
    for threshold in grid:
        for n_chunks in chunk_grid:
            key = (_bucket_count(gradient_bytes, threshold, compression_model), n_chunks)
            predicted = predict_exchange_time(
                params, world_size, gradient_bytes, algorithm, threshold, n_chunks,
                compression_model,
                ranks_per_host=ranks_per_host, inter_params=inter_params,
                sharding=sharding,
            )
            if key not in seen or predicted < seen[key][0]:
                seen[key] = (predicted, threshold, n_chunks)
    ranked = sorted(seen.values())

    measured_time = float("nan")
    measured_baseline = float("nan")
    predicted, threshold, n_chunks = ranked[0]
    if live_trials > 0 and world_size > 1:
        backend_opts = None
        if backend == "hier" and ranks_per_host is not None and len(ranks_per_host) > 1:
            # Trials must run on the topology the grid was scored for.
            spec = ",".join(
                str(host) for host, n in enumerate(ranks_per_host) for _ in range(n)
            )
            backend_opts = {"host_topology": spec}
        num_elements = max(1, gradient_bytes // _BYTES_PER_ELEMENT)
        trials = []
        for cand_predicted, cand_threshold, cand_chunks in ranked[:live_trials]:
            elapsed = _measure_exchange(
                world_size, num_elements, algorithm, cand_threshold, cand_chunks,
                iterations=live_iterations, backend=backend, compression=compression,
                backend_opts=backend_opts,
            )
            trials.append((elapsed, cand_predicted, cand_threshold, cand_chunks))
        measured_baseline = _measure_exchange(
            world_size, num_elements, algorithm, DEFAULT_FIXED_THRESHOLD_BYTES, 1,
            iterations=live_iterations, backend=backend, compression=compression,
            backend_opts=backend_opts,
        )
        measured_time, predicted, threshold, n_chunks = min(trials)
        # The fixed default was measured too: if every candidate loses to
        # it on the real backend, recommend the default itself.
        if measured_baseline < measured_time:
            measured_time = measured_baseline
            predicted, threshold, n_chunks = (
                baseline_time, DEFAULT_FIXED_THRESHOLD_BYTES, 1,
            )

    return TunedPlan(
        world_size=world_size,
        gradient_bytes=int(gradient_bytes),
        algorithm=algorithm,
        fusion_threshold_bytes=int(threshold),
        pipeline_chunks=int(n_chunks),
        compression=codec_name,
        predicted_time=float(predicted),
        baseline_time=float(baseline_time),
        measured_time=measured_time,
        measured_baseline_time=measured_baseline,
        ranks_per_host=ranks_per_host,
        _compression_model=compression_model,
    )


def tune_with_profile(
    profile: CalibratedProfile,
    gradient_bytes: int,
    algorithm: str = "ring",
    **kwargs,
) -> TunedPlan:
    """Autotune at the profile's world size with its fitted parameters.

    Live trials (``live_trials > 0``) run on the backend the profile was
    calibrated against, so measured and modelled times describe the same
    transport.  When a codec is given, its encode/decode costs come from
    the profile's live measurements
    (:meth:`~repro.tuning.calibration.CalibratedProfile.compression_model`)
    rather than the class-attribute constants.
    """
    kwargs.setdefault("backend", profile.backend)
    # Two-tier profiles supply the inter-host link class for multi-host
    # (ranks_per_host) scoring; a no-op for flat topologies.
    kwargs.setdefault("inter_params", profile.link("inter"))
    compression = kwargs.get("compression")
    if compression is not None and kwargs.get("compression_model") is None:
        from repro.compression import get_codec

        kwargs["compression_model"] = profile.compression_model(
            get_codec(compression)
        )
    return autotune(
        profile.params, profile.world_size, gradient_bytes, algorithm, **kwargs
    )


def resolve_auto_fusion(
    config: "TrainingConfig",
    num_parameters: int,
    bytes_per_element: int = _BYTES_PER_ELEMENT,
    cache_dir: Optional[Path] = None,
    quick: bool = True,
) -> "TrainingConfig":
    """Resolve ``"auto"`` fusion knobs of a training configuration.

    Returns ``config`` unchanged when neither knob is ``"auto"``.
    Otherwise the profile for ``(config.comm_backend, world_size)`` is
    loaded from the cache (measured once on that backend and cached when
    absent), the grid is searched at the job's gradient size, and a copy
    of the configuration with the concrete values is returned.  A knob
    the user pinned to a number is honoured: the search is restricted to
    that value.
    """
    auto_threshold = config.fusion_threshold_bytes == "auto"
    auto_chunks = config.pipeline_chunks == "auto"
    if not auto_threshold and not auto_chunks:
        return config
    if num_parameters < 1:
        raise ValueError(f"num_parameters must be >= 1, got {num_parameters}")

    if config.world_size == 1:
        # Single-process runs never exchange; fall back to inert values.
        return replace(
            config,
            fusion_threshold_bytes=None if auto_threshold else config.fusion_threshold_bytes,
            pipeline_chunks=1 if auto_chunks else config.pipeline_chunks,
        )

    if cache_dir is None and config.tuning_cache_dir is not None:
        cache_dir = Path(config.tuning_cache_dir)
    profile = calibrate(
        config.world_size,
        backend=config.comm_backend,
        quick=quick,
        cache_dir=cache_dir,
    )
    gradient_bytes = max(1, int(num_parameters) * int(bytes_per_element))
    if auto_threshold:
        thresholds = None
    elif config.fusion_threshold_bytes is None:
        # Legacy fixed-count bucketing: restrict the search to a threshold
        # reproducing the bucket count the exchange will actually run —
        # synchronous exchanges honour ``fusion_buckets``, partial
        # exchanges always use a single bucket in legacy mode.
        legacy_buckets = config.fusion_buckets if config.mode == "sync" else 1
        thresholds = [max(1, -(-gradient_bytes // max(1, legacy_buckets)))]
    else:
        thresholds = [int(config.fusion_threshold_bytes)]
    chunks = None if auto_chunks else [int(config.pipeline_chunks)]
    compression_model = None
    if getattr(config, "compression", None) is not None:
        from repro.compression import get_codec

        # Measured transform costs from the cached profile, not the
        # codec's hardcoded numpy-throughput constants.
        compression_model = profile.compression_model(
            get_codec(config.compression, **(config.compression_options or {}))
        )
    plan = autotune(
        profile.params,
        config.world_size,
        gradient_bytes,
        algorithm=config.allreduce_algorithm,
        thresholds=thresholds,
        chunks=chunks,
        compression_model=compression_model,
        sharding=getattr(config, "sharding", "none"),
    )
    return replace(
        config,
        fusion_threshold_bytes=(
            plan.fusion_threshold_bytes if auto_threshold else config.fusion_threshold_bytes
        ),
        pipeline_chunks=(
            plan.pipeline_chunks if auto_chunks else config.pipeline_chunks
        ),
    )
