"""Schedule engine: DAGs of communication/computation operations.

A *schedule* (Section 4.1.1 of the paper) is a directed acyclic graph
whose vertices are operations — point-to-point sends and receives, simple
computations on buffers, and NOPs — and whose edges are happens-before
dependencies.  Operations may depend on several others with *and* or *or*
logic, are *consumable* (execute at most once even when multiple
dependency paths trigger them), and a schedule may be *persistent*,
replicating itself transparently after each execution so that the same
partial collective can run many times without application intervention.

The engine here is transport-agnostic: it executes a schedule against any
:class:`repro.comm.Communicator`.  The collective builders in
:mod:`repro.collectives.schedules` produce the activation and allreduce
schedules used by the partial collectives.
"""

from repro.schedule.ops import (
    Operation,
    SendOp,
    RecvOp,
    ComputeOp,
    NopOp,
    TriggerOp,
    DepMode,
    OpState,
)
from repro.schedule.graph import Schedule, ScheduleValidationError
from repro.schedule.executor import ScheduleExecutor, PersistentScheduleRunner

__all__ = [
    "Operation",
    "SendOp",
    "RecvOp",
    "ComputeOp",
    "NopOp",
    "TriggerOp",
    "DepMode",
    "OpState",
    "Schedule",
    "ScheduleValidationError",
    "ScheduleExecutor",
    "PersistentScheduleRunner",
]
