"""Operations composing a schedule.

Four operation kinds are defined, mirroring Section 4.1.1 of the paper:

* point-to-point communications: :class:`SendOp` and :class:`RecvOp`;
* :class:`ComputeOp`: simple computations between arrays held in the
  schedule's named buffers;
* :class:`NopOp`: completes immediately, used only to build dependencies
  (e.g. the "activation" NOP of Fig. 6).

Operations are *consumable*: once executed they cannot execute again,
which is how a schedule behaves correctly when several initiators trigger
the same collective concurrently.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Dict, List, Optional

import numpy as np


class DepMode(enum.Enum):
    """How an operation's dependencies combine."""

    #: The operation becomes ready when *all* dependencies completed.
    AND = "and"
    #: The operation becomes ready when *any* dependency completed
    #: (dashed-border operations in Fig. 6 of the paper).
    OR = "or"


class OpState(enum.Enum):
    """Lifecycle of an operation inside one schedule execution."""

    PENDING = "pending"
    DONE = "done"
    #: The operation was skipped: its dependencies can no longer be
    #: satisfied in this execution (e.g. the activation receive of the
    #: initiator itself).  Skipped operations count as "consumed".
    SKIPPED = "skipped"


class Operation:
    """Base class for schedule operations.

    Parameters
    ----------
    name:
        Unique name within the schedule.
    dep_mode:
        AND/OR combination of the operation's dependencies.
    """

    def __init__(self, name: str, dep_mode: DepMode = DepMode.AND) -> None:
        if not name:
            raise ValueError("operation name must be non-empty")
        self.name = name
        self.dep_mode = dep_mode
        self.state = OpState.PENDING
        #: Names of operations this one depends on (filled by the Schedule).
        self.dependencies: List[str] = []

    # -- protocol used by the executor ---------------------------------
    def reset(self) -> None:
        """Return the operation to its pristine state (for persistence)."""
        self.state = OpState.PENDING

    @property
    def consumed(self) -> bool:
        return self.state is not OpState.PENDING

    def describe(self) -> str:
        return f"{type(self).__name__}({self.name})"

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{self.describe()}[{self.state.value}]"


class TriggerOp(Operation):
    """An operation fired explicitly by the application.

    It models *internal activation* (the process reaching the collective
    call, NOP ``N0`` in Fig. 6): the operation has no dependencies but is
    not ready until :meth:`trigger` is called.  If the collective is
    externally activated instead, the trigger op is simply never fired and
    is abandoned at the end of the execution.
    """

    def __init__(self, name: str) -> None:
        super().__init__(name, DepMode.AND)
        self.triggered = False

    def trigger(self) -> None:
        self.triggered = True

    def reset(self) -> None:
        super().reset()
        self.triggered = False

    def execute(self, buffers: Dict[str, Any]) -> None:
        if not self.triggered:
            raise RuntimeError(f"TriggerOp {self.name} executed before being triggered")


class NopOp(Operation):
    """No-operation: completes immediately; used to build dependencies."""

    def __init__(self, name: str, dep_mode: DepMode = DepMode.AND,
                 on_fire: Optional[Callable[[Dict[str, Any]], None]] = None) -> None:
        super().__init__(name, dep_mode)
        #: Optional callback invoked when the NOP fires (used for
        #: signalling, e.g. "the collective result is ready").
        self.on_fire = on_fire

    def execute(self, buffers: Dict[str, Any]) -> None:
        if self.on_fire is not None:
            self.on_fire(buffers)


class ComputeOp(Operation):
    """A computation between buffers, e.g. an element-wise reduction step.

    Parameters
    ----------
    fn:
        Callable receiving the schedule's buffer dictionary; it mutates
        buffers in place and/or stores new entries.
    """

    def __init__(
        self,
        name: str,
        fn: Callable[[Dict[str, Any]], None],
        dep_mode: DepMode = DepMode.AND,
    ) -> None:
        super().__init__(name, dep_mode)
        self.fn = fn

    def execute(self, buffers: Dict[str, Any]) -> None:
        self.fn(buffers)


class SendOp(Operation):
    """Send the contents of a buffer (or a computed payload) to a peer.

    Parameters
    ----------
    dest:
        Destination rank.
    tag:
        Message tag.
    buffer:
        Name of the schedule buffer whose *current* value is sent, or
        ``None`` when ``payload_fn`` is given.
    payload_fn:
        Callable producing the payload at fire time from the buffer dict.
        Deferring payload construction to fire time matters for partial
        collectives: the value sent must be whatever the buffer holds when
        the dependency fires, not when the schedule was built.
    """

    def __init__(
        self,
        name: str,
        dest: int,
        tag: int,
        buffer: Optional[str] = None,
        payload_fn: Optional[Callable[[Dict[str, Any]], Any]] = None,
        dep_mode: DepMode = DepMode.AND,
    ) -> None:
        super().__init__(name, dep_mode)
        if (buffer is None) == (payload_fn is None):
            raise ValueError("SendOp requires exactly one of buffer or payload_fn")
        self.dest = int(dest)
        self.tag = int(tag)
        self.buffer = buffer
        self.payload_fn = payload_fn

    def payload(self, buffers: Dict[str, Any]) -> Any:
        if self.payload_fn is not None:
            return self.payload_fn(buffers)
        if self.buffer not in buffers:
            raise KeyError(f"SendOp {self.name}: buffer {self.buffer!r} not found")
        value = buffers[self.buffer]
        return value.copy() if isinstance(value, np.ndarray) else value


class RecvOp(Operation):
    """Receive a message and store its payload into a buffer.

    Parameters
    ----------
    source:
        Source rank (or :data:`repro.comm.ANY_SOURCE`).
    tag:
        Message tag (or :data:`repro.comm.ANY_TAG`).
    buffer:
        Name of the schedule buffer to store the received payload into.
    combine:
        Optional binary function ``(existing, received) -> new`` applied
        when the buffer already exists — used to implement reduction steps
        (e.g. ``existing + received`` in a recursive-doubling exchange).
    """

    def __init__(
        self,
        name: str,
        source: int,
        tag: int,
        buffer: str,
        combine: Optional[Callable[[Any, Any], Any]] = None,
        dep_mode: DepMode = DepMode.AND,
    ) -> None:
        super().__init__(name, dep_mode)
        self.source = int(source)
        self.tag = int(tag)
        self.buffer = buffer
        self.combine = combine

    def store(self, buffers: Dict[str, Any], payload: Any) -> None:
        if self.combine is not None and self.buffer in buffers:
            buffers[self.buffer] = self.combine(buffers[self.buffer], payload)
        else:
            buffers[self.buffer] = payload
