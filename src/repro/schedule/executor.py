"""Execution engine for schedules.

The executor progresses a schedule against a
:class:`repro.comm.Communicator`: operations whose dependencies are
satisfied are executed; ready receives are matched against the rank's
mailbox by polling, so that several receives can be outstanding at once
and complete in whatever order the matching messages arrive (the *or*
dependency pattern of Fig. 6 relies on this).

Two drivers are provided:

* :class:`ScheduleExecutor` — one execution of one schedule, run either on
  the application thread (``run``) or incrementally (``step``) by an
  auxiliary progress thread (Section 4.3, *asynchronous execution by
  library offloading*).
* :class:`PersistentScheduleRunner` — re-creates the schedule after every
  execution so the same collective can be executed repeatedly without
  application intervention (Section 4.1.1, *persistent schedules*).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Iterable, List, Optional

from repro.comm.communicator import Communicator
from repro.schedule.graph import Schedule
from repro.schedule.ops import (
    ComputeOp,
    NopOp,
    Operation,
    OpState,
    RecvOp,
    SendOp,
    TriggerOp,
)


class ScheduleExecutionError(RuntimeError):
    """The schedule could not make progress (deadlock or timeout)."""


class ScheduleExecutor:
    """Executes one schedule instance over a communicator.

    Parameters
    ----------
    comm:
        Communicator carrying the schedule's sends and receives.
    schedule:
        The schedule to execute.  It is validated on construction.
    poll_interval:
        Sleep between polling rounds when no progress is possible yet.
    """

    def __init__(
        self,
        comm: Communicator,
        schedule: Schedule,
        poll_interval: float = 1e-4,
    ) -> None:
        schedule.validate()
        self.comm = comm
        self.schedule = schedule
        self.poll_interval = float(poll_interval)
        #: Number of operations executed by this executor.
        self.executed_ops = 0

    # ------------------------------------------------------------- step
    def _execute_local(self, op: Operation) -> None:
        """Run a send/compute/NOP operation (anything but a receive)."""
        buffers = self.schedule.buffers
        if isinstance(op, SendOp):
            self.comm.send(op.payload(buffers), op.dest, tag=op.tag)
        elif isinstance(op, (ComputeOp, NopOp, TriggerOp)):
            op.execute(buffers)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unexpected local op type: {type(op).__name__}")
        op.state = OpState.DONE
        self.executed_ops += 1

    def _try_recv(self, op: RecvOp) -> bool:
        """Poll the mailbox for the message matching a ready receive."""
        msg = self.comm.poll(source=op.source, tag=op.tag)
        if msg is None:
            return False
        op.store(self.schedule.buffers, msg)
        op.state = OpState.DONE
        self.executed_ops += 1
        return True

    def step(self) -> bool:
        """Execute every currently-ready operation once.

        Returns ``True`` if at least one operation completed.  Newly
        enabled operations are picked up within the same call (the loop
        repeats until a fixed point), so a single ``step`` drains all work
        that does not require waiting for a message.
        """
        progressed_any = False
        while True:
            progressed = False
            for name, op in list(self.schedule.ops.items()):
                if not self.schedule.is_ready(name):
                    continue
                if isinstance(op, RecvOp):
                    if self._try_recv(op):
                        progressed = True
                else:
                    self._execute_local(op)
                    progressed = True
            progressed_any = progressed_any or progressed
            if not progressed:
                return progressed_any

    # -------------------------------------------------------------- run
    def run(
        self,
        until: Optional[Iterable[str]] = None,
        timeout: Optional[float] = 60.0,
    ) -> Schedule:
        """Execute until the target operations (or the whole schedule) complete.

        Parameters
        ----------
        until:
            Names of operations whose completion terminates execution.
            ``None`` means "all operations".  Partial collectives pass the
            final NOP here: operations that never fire (e.g. the external
            activation receives of the initiator) are then abandoned via
            :meth:`abandon_pending`.
        timeout:
            Overall wall-clock limit in seconds.
        """
        targets = list(until) if until is not None else None
        if targets:
            unknown = [t for t in targets if t not in self.schedule.ops]
            if unknown:
                raise ScheduleExecutionError(f"unknown target ops: {unknown}")
        deadline = None if timeout is None else time.perf_counter() + timeout
        while not self.schedule.done(targets):
            progressed = self.step()
            if self.schedule.done(targets):
                break
            if not progressed:
                if not self._has_pending_recv():
                    raise ScheduleExecutionError(
                        f"schedule {self.schedule.name!r} is stuck: no ready "
                        "operations and no receive to wait for"
                    )
                if deadline is not None and time.perf_counter() > deadline:
                    raise ScheduleExecutionError(
                        f"schedule {self.schedule.name!r} timed out after {timeout}s; "
                        f"pending ops: {[o.name for o in self.schedule.pending_ops()]}"
                    )
                time.sleep(self.poll_interval)
        return self.schedule

    def _has_pending_recv(self) -> bool:
        return any(
            isinstance(op, RecvOp) and self.schedule.is_ready(name)
            for name, op in self.schedule.ops.items()
        )

    def abandon_pending(self) -> List[str]:
        """Mark all still-pending operations as skipped (consumed).

        Used after a partial collective completes: operations that did not
        fire in this execution (for instance the activation receives on
        the initiator) must not fire later, because the next execution of
        the persistent schedule starts from a fresh copy.
        """
        skipped = []
        for op in self.schedule.ops.values():
            if op.state is OpState.PENDING:
                op.state = OpState.SKIPPED
                skipped.append(op.name)
        return skipped


class PersistentScheduleRunner:
    """Repeatedly executes a schedule, re-creating it after each run.

    Parameters
    ----------
    comm:
        Communicator used by every execution.
    schedule_factory:
        Callable ``(execution_index) -> Schedule`` building the schedule
        for a given execution.  Building per execution (rather than
        deep-copying a template) lets tags be namespaced per round, which
        keeps concurrent asynchronous executions of the same collective
        from stealing each other's messages.
    """

    def __init__(
        self,
        comm: Communicator,
        schedule_factory: Callable[[int], Schedule],
        poll_interval: float = 1e-4,
    ) -> None:
        self.comm = comm
        self.schedule_factory = schedule_factory
        self.poll_interval = poll_interval
        self.executions = 0
        #: Buffers persisting across executions (latest result wins).
        self.persistent_buffers: Dict[str, object] = {}

    def execute(
        self,
        until: Optional[Iterable[str]] = None,
        timeout: Optional[float] = 60.0,
    ) -> Schedule:
        """Run the next execution of the persistent schedule."""
        schedule = self.schedule_factory(self.executions)
        # Share the persistent buffers: the receive buffer always contains
        # the value of the latest execution (Section 4.1.1).
        for key, value in self.persistent_buffers.items():
            schedule.buffers.setdefault(key, value)
        executor = ScheduleExecutor(self.comm, schedule, poll_interval=self.poll_interval)
        executor.run(until=until, timeout=timeout)
        executor.abandon_pending()
        self.persistent_buffers.update(schedule.buffers)
        self.executions += 1
        return schedule
