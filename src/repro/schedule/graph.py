"""Schedule graphs: operations + happens-before dependencies + buffers."""

from __future__ import annotations

import copy
from typing import Any, Callable, Dict, Iterable, List, Optional

import networkx as nx
import numpy as np

from repro.schedule.ops import (
    ComputeOp,
    DepMode,
    NopOp,
    Operation,
    OpState,
    RecvOp,
    SendOp,
    TriggerOp,
)


class ScheduleValidationError(ValueError):
    """The schedule is structurally invalid (cycle, missing op, ...)."""


class Schedule:
    """A DAG of operations executed by one rank.

    A schedule also owns a dictionary of named *buffers* shared by its
    operations: send buffers, receive buffers and intermediates of the
    reduction computation.  Buffers are plain Python/NumPy values.

    Parameters
    ----------
    name:
        Human-readable schedule name (e.g. ``"solo-allreduce[rank=3]"``).
    persistent:
        Whether the schedule transparently re-creates itself after being
        executed (Section 4.1.1, *persistent schedules*).  The re-creation
        itself is performed by
        :class:`repro.schedule.executor.PersistentScheduleRunner`.
    """

    def __init__(self, name: str = "schedule", persistent: bool = False) -> None:
        self.name = name
        self.persistent = persistent
        self.ops: Dict[str, Operation] = {}
        self.buffers: Dict[str, Any] = {}
        self._graph = nx.DiGraph()

    # ------------------------------------------------------------ build
    def add(self, op: Operation, after: Iterable[str] = ()) -> Operation:
        """Add ``op`` to the schedule, depending on the ops named in ``after``."""
        if op.name in self.ops:
            raise ScheduleValidationError(f"duplicate operation name {op.name!r}")
        self.ops[op.name] = op
        self._graph.add_node(op.name)
        for dep in after:
            self.add_dependency(dep, op.name)
        return op

    def add_dependency(self, before: str, after: str) -> None:
        """Declare that ``after`` happens after ``before``."""
        if after not in self.ops:
            raise ScheduleValidationError(f"unknown operation {after!r}")
        if before not in self.ops:
            raise ScheduleValidationError(f"unknown operation {before!r}")
        self._graph.add_edge(before, after)
        self.ops[after].dependencies.append(before)

    # convenience constructors -----------------------------------------
    def nop(self, name: str, after: Iterable[str] = (), dep_mode: DepMode = DepMode.AND,
            on_fire: Optional[Callable[[Dict[str, Any]], None]] = None) -> NopOp:
        return self.add(NopOp(name, dep_mode=dep_mode, on_fire=on_fire), after)  # type: ignore[return-value]

    def compute(self, name: str, fn: Callable[[Dict[str, Any]], None],
                after: Iterable[str] = (), dep_mode: DepMode = DepMode.AND) -> ComputeOp:
        return self.add(ComputeOp(name, fn, dep_mode=dep_mode), after)  # type: ignore[return-value]

    def send(self, name: str, dest: int, tag: int, buffer: Optional[str] = None,
             payload_fn: Optional[Callable[[Dict[str, Any]], Any]] = None,
             after: Iterable[str] = (), dep_mode: DepMode = DepMode.AND) -> SendOp:
        return self.add(
            SendOp(name, dest, tag, buffer=buffer, payload_fn=payload_fn, dep_mode=dep_mode),
            after,
        )  # type: ignore[return-value]

    def recv(self, name: str, source: int, tag: int, buffer: str,
             combine: Optional[Callable[[Any, Any], Any]] = None,
             after: Iterable[str] = (), dep_mode: DepMode = DepMode.AND) -> RecvOp:
        return self.add(
            RecvOp(name, source, tag, buffer, combine=combine, dep_mode=dep_mode), after
        )  # type: ignore[return-value]

    def set_buffer(self, name: str, value: Any) -> None:
        """Set (or overwrite) a named buffer."""
        self.buffers[name] = value

    def get_buffer(self, name: str, default: Any = None) -> Any:
        return self.buffers.get(name, default)

    # --------------------------------------------------------- validate
    def validate(self) -> None:
        """Check the schedule is a DAG with consistent dependencies."""
        if not nx.is_directed_acyclic_graph(self._graph):
            cycle = nx.find_cycle(self._graph)
            raise ScheduleValidationError(f"schedule {self.name!r} has a cycle: {cycle}")
        for op in self.ops.values():
            for dep in op.dependencies:
                if dep not in self.ops:
                    raise ScheduleValidationError(
                        f"operation {op.name!r} depends on unknown op {dep!r}"
                    )

    # ----------------------------------------------------------- queries
    def dependencies_of(self, name: str) -> List[str]:
        return list(self._graph.predecessors(name))

    def dependents_of(self, name: str) -> List[str]:
        return list(self._graph.successors(name))

    def roots(self) -> List[str]:
        """Operations with no dependencies (executable immediately)."""
        return [n for n in self._graph.nodes if self._graph.in_degree(n) == 0]

    def topological_order(self) -> List[str]:
        self.validate()
        return list(nx.topological_sort(self._graph))

    def is_ready(self, name: str) -> bool:
        """Whether the operation's dependencies are satisfied."""
        op = self.ops[name]
        if op.consumed:
            return False
        if isinstance(op, TriggerOp) and not op.triggered:
            return False
        deps = self.dependencies_of(name)
        if not deps:
            return True
        states = [self.ops[d].state for d in deps]
        if op.dep_mode is DepMode.OR:
            return any(s is OpState.DONE for s in states)
        return all(s is OpState.DONE for s in states)

    def pending_ops(self) -> List[Operation]:
        return [op for op in self.ops.values() if op.state is OpState.PENDING]

    def done(self, targets: Optional[Iterable[str]] = None) -> bool:
        """Whether the schedule (or the given target ops) has completed."""
        if targets is None:
            return all(op.consumed for op in self.ops.values())
        return all(self.ops[t].state is OpState.DONE for t in targets)

    # -------------------------------------------------------- persistence
    def fresh_copy(self) -> "Schedule":
        """Return a pristine copy of this schedule (for persistent re-execution).

        Operation objects are deep-copied with their state reset; buffers
        are *not* copied — persistent collectives deliberately reuse their
        send/receive buffers so that the latest execution's result
        overwrites the previous one (Section 4.1.1).
        """
        clone = Schedule(self.name, persistent=self.persistent)
        clone.buffers = self.buffers  # shared on purpose
        for name, op in self.ops.items():
            op_copy = copy.copy(op)
            op_copy.dependencies = []
            op_copy.reset()
            clone.ops[name] = op_copy
            clone._graph.add_node(name)
        for before, after in self._graph.edges:
            clone._graph.add_edge(before, after)
            clone.ops[after].dependencies.append(before)
        return clone

    def reset(self) -> None:
        """Reset all operation states in place (cheaper than a fresh copy)."""
        for op in self.ops.values():
            op.reset()

    # --------------------------------------------------------------- misc
    def __len__(self) -> int:
        return len(self.ops)

    def __contains__(self, name: str) -> bool:
        return name in self.ops

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Schedule({self.name!r}, ops={len(self.ops)}, persistent={self.persistent})"
