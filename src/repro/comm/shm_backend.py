"""Zero-copy shared-memory transport: per-pair SPSC ring buffers.

The third :class:`~repro.comm.backend.CommBackend` keeps the process
backend's execution model — one forked OS process per rank, rank-0
rendezvous, launcher-mediated abort broadcast, identical
:class:`~repro.comm.backend.WorldError` semantics — and replaces its
byte pipe: instead of loopback TCP (one copy into the kernel socket
buffer, one copy out, a syscall per chunk on both sides), every ordered
rank pair ``(i -> j)`` owns a single-producer/single-consumer ring
buffer in a ``multiprocessing.shared_memory`` segment.  A send writes
the frame — and the NumPy payload's raw buffer — directly into the
ring; the receive copies straight from the ring into the destination
array.  No pickling of array bytes, no kernel data copies, no data-path
syscalls.

Segment layout
--------------
One segment per directed pair, created by the *consumer* rank::

    offset   0  uint64  head      bytes consumed   (written by consumer)
    offset   8  uint32  cwait     consumer may be sleeping on its event
    offset  12  uint32  cclosed   consumer departed (writes now evaporate)
    offset  64  uint64  tail      bytes produced   (written by producer)
    offset  72  uint32  pwait     producer may be sleeping on its event
    offset  76  uint32  pclosed   producer departed (drained ring = EOF)
    offset 128  byte[]  data      ``ring_bytes`` capacity, wraps mod size

``head`` and ``tail`` are free-running 64-bit byte counters on separate
cache lines (seqlock style: ``tail - head`` is the readable span,
``capacity - (tail - head)`` the writable one).  The producer copies
payload bytes first and publishes ``tail`` after; the consumer reads
``tail`` before touching data — on total-store-order machines (x86)
that ordering makes the fast path correct without any lock, futex or
syscall.  Pure Python cannot emit memory fences, so the capability
probe refuses weakly ordered architectures outright (the backend is
then absent from ``available_backends()`` rather than silently racy).

Progress is **spin-then-event**: a starved side yields the CPU a few
times (zero times on oversubscribed machines, where spinning starves
the very peer it waits for), then raises its ``*wait`` flag, re-checks,
and sleeps briefly on a per-rank pipe doorbell (:class:`_Doorbell`).
The peer only rings when it observes the flag, so the streaming fast
path never enters the kernel.  There is no background progress thread:
whichever thread would otherwise idle drains the rings itself — blocked
receivers (:class:`_PumpingMailbox`), senders waiting out a full ring,
and ``poll``/``probe`` callers — so the lockstep hot path runs
producer-to-consumer with a single wake-up and no GIL handoffs.

Frames larger than the ring (or than the free span) stream through it:
the producer writes as space appears, the consumer's incremental parser
consumes partial frames, so a 64 MB payload flows through a 4 MB ring
with producer and consumer pipelined.

Wire format, failure semantics, channels and the launcher are shared
with :mod:`repro.comm.process_backend` (the frames are byte-identical).
A rank that *finishes* sets ``pclosed`` on its outbound rings — the
drained-ring analogue of a socket EOF; a rank that crashes is detected
by the launcher, which aborts the world through the control pipes.

Hygiene: segments are unlinked by the launcher in a ``finally`` sweep
(backed by ``atexit``), and every ``run()`` first sweeps segments leaked
by *crashed* earlier runs (names embed the creating PID; a dead owner
means the segment is garbage), so no crash can poison the next run or
leak ``/dev/shm`` pages.
"""

from __future__ import annotations

import atexit
import errno
import logging
import os
import pickle
import secrets
import select
import socket
import struct
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.comm.backend import mark_backend_unavailable, register_backend
from repro.comm.mailbox import Mailbox, MailboxClosed
from repro.comm.message import Message
from repro.comm.process_backend import (
    _HEADER_LEN,
    MeshEndpoint,
    ProcessBackend,
    _rendezvous,
    pack_frame,
    payload_finish,
    payload_scratch,
)

__all__ = ["ShmBackend", "ShmEndpoint", "DEFAULT_RING_BYTES", "segment_name"]

logger = logging.getLogger(__name__)

#: Ring capacity per directed pair (overridable via
#: ``backend_opts={"ring_bytes": ...}`` on :func:`repro.comm.launch`).
DEFAULT_RING_BYTES = 1 << 22
#: Smallest permitted ring (must comfortably hold a frame header).
MIN_RING_BYTES = 1 << 12

#: Prefix of every segment name; the stale-segment sweep keys on it.
_NAME_PREFIX = "repro-shm"
#: Where POSIX shared memory appears as files (used only by the sweep).
_SHM_DIR = "/dev/shm"

#: Header field offsets (bytes) inside a ring segment.
_RING_HEADER_BYTES = 128
_OFF_HEAD = 0
_OFF_CWAIT = 8
_OFF_CCLOSED = 12
_OFF_TAIL = 64
_OFF_PWAIT = 72
_OFF_PCLOSED = 76

#: Event-wait slice; bounds the reaction time to aborts and crashes.
_WAIT_SLICE = 0.05

#: Serialises the pre-3.13 resource-tracker monkeypatch: two threads
#: interleaving save/patch/restore could otherwise leave the no-op
#: lambda installed permanently, silently untracking every later
#: multiprocessing resource in the process.
_TRACKER_PATCH_LOCK = threading.Lock()


def _spin_iterations(world_size: int) -> int:
    """Yield-spin budget before arming the event fallback.

    Spinning only pays when every rank (plus a progress thread) can own
    a core; on an oversubscribed machine each spin iteration steals the
    CPU from the very peer being waited for, so the starved side should
    go straight to its doorbell.  Single-core CI boxes land at 0.
    """
    cpus = os.cpu_count() or 1
    return 64 if cpus > world_size else 0


class _Doorbell:
    """A one-byte pipe used as a cross-process wakeup signal.

    The event half of the rings' spin-then-event fallback.  A waiter
    that found its rings starved arms its flag and sleeps in
    ``select``; the peer that changes the starved condition *and sees
    the flag* writes one byte.  One syscall to ring, one ``select`` plus
    one drain ``read`` to wake — cheaper than ``multiprocessing.Event``
    (several semaphore operations per transition), and the fast path
    (flag unarmed) touches the kernel not at all.  Both ends are
    non-blocking: a full pipe just means wakeups are already pending.
    """

    def __init__(self) -> None:
        self._read_fd, self._write_fd = os.pipe()
        os.set_blocking(self._read_fd, False)
        os.set_blocking(self._write_fd, False)

    def __reduce__(self):
        # Under the spawn start method the worker arguments are pickled;
        # raw fd numbers would be meaningless in the child, so ship
        # duplicates through multiprocessing's fd-passing machinery
        # (DupFd detaches to a valid fd on the receiving side).  Fork
        # never pickles, so the fast path is unchanged.
        from multiprocessing.reduction import DupFd

        return (_rebuild_doorbell, (DupFd(self._read_fd), DupFd(self._write_fd)))

    def ring(self) -> None:
        try:
            os.write(self._write_fd, b"\0")
        except (BlockingIOError, InterruptedError):
            pass  # enough wakeups queued already
        except OSError:
            pass  # closing down

    def wait(self, timeout: float) -> None:
        try:
            ready, _, _ = select.select([self._read_fd], [], [], timeout)
            if ready:
                while os.read(self._read_fd, 4096):
                    pass
        except (BlockingIOError, InterruptedError):
            pass  # drained
        except (OSError, ValueError):
            pass  # closing down

    def close(self) -> None:
        """Release the launcher's fds after the world has ended.

        Only the launcher calls this (in ``_cleanup_world``, once every
        rank has been joined) — rank processes never close their forked
        duplicates, because a half-closed doorbell would turn a late
        wakeup into an EBADF race; the OS reclaims theirs at exit.
        """
        for fd in (self._read_fd, self._write_fd):
            try:
                os.close(fd)
            except OSError:  # pragma: no cover - already closed
                pass


def _rebuild_doorbell(read_dup, write_dup) -> "_Doorbell":
    """Reconstruct a :class:`_Doorbell` from pickled fd duplicates."""
    bell = _Doorbell.__new__(_Doorbell)
    bell._read_fd = read_dup.detach()
    bell._write_fd = write_dup.detach()
    os.set_blocking(bell._read_fd, False)
    os.set_blocking(bell._write_fd, False)
    return bell


# ---------------------------------------------------------------------------
# capability probe
# ---------------------------------------------------------------------------
#: Architectures whose hardware memory model is total-store-order.  The
#: rings publish data with plain stores (copy payload, then write the
#: tail counter) and have no portable way to emit fences from pure
#: Python, so the ordering guarantee comes from TSO; on weakly ordered
#: machines (aarch64, ppc64le) a consumer could observe a published tail
#: before the payload bytes and silently read torn frames.
_TSO_MACHINES = frozenset({"x86_64", "amd64", "i686", "i586", "i486", "i386"})


def _probe() -> Optional[str]:
    """Why this platform cannot run the shm transport (``None`` = it can)."""
    import platform

    machine = platform.machine().lower()
    if machine not in _TSO_MACHINES:
        return (
            f"the ring buffers' lock-free cursor publication relies on "
            f"total-store-order (x86) and this machine is {machine!r}"
        )
    try:
        from multiprocessing import shared_memory
    except ImportError as exc:  # pragma: no cover - py>=3.8 always has it
        return f"multiprocessing.shared_memory is unavailable ({exc})"
    try:
        import multiprocessing

        multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return "the fork start method is unavailable (POSIX only)"
    # Probe with a name as long as a real ring's: some platforms cap
    # segment names well below Linux's (macOS: 31 bytes), and a backend
    # that probes available but fails at mesh build would be worse than
    # one that is cleanly absent.
    probe_name = segment_name(_session_name(), 9999, 9999)
    try:
        segment = shared_memory.SharedMemory(
            name=probe_name, create=True, size=MIN_RING_BYTES
        )
    except (OSError, ValueError) as exc:  # pragma: no cover - no /dev/shm
        return f"cannot create shared-memory segments: {exc}"
    try:
        segment.close()
        segment.unlink()
    except OSError:  # pragma: no cover - unlink race is harmless
        pass
    return None


def _open_segment(name: str, create: bool, size: int = 0):
    """Open a segment without enrolling it in the resource tracker.

    Segment lifetime is owned explicitly here — the launcher unlinks
    every segment in its ``finally`` sweep (plus ``atexit``), and
    :func:`sweep_stale_segments` covers crashed launchers.  The default
    tracker bookkeeping is wrong for this ownership model: before
    Python 3.13 *attaching* registers too, and since the tracker's
    cache is a set shared by creator and attacher, the paired
    registrations collapse and teardown prints spurious KeyError /
    leaked-object noise.  Python 3.13+ exposes ``track=False`` for
    exactly this; older versions get the no-op-register equivalent.
    """
    from multiprocessing import shared_memory

    try:
        return shared_memory.SharedMemory(
            name=name, create=create, size=size, track=False
        )
    except TypeError:  # pragma: no cover - Python < 3.13
        pass
    from multiprocessing import resource_tracker

    with _TRACKER_PATCH_LOCK:
        original = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name, create=create, size=size)
        finally:
            resource_tracker.register = original


def _unlink_segment(segment) -> None:
    """Unlink a segment opened by :func:`_open_segment`.

    Pre-3.13 ``unlink()`` unconditionally tells the resource tracker to
    forget a registration :func:`_open_segment` never made; suppress the
    unpaired unregister the same way (3.13+ ``track=False`` segments
    skip it natively).
    """
    from multiprocessing import resource_tracker

    with _TRACKER_PATCH_LOCK:
        original = resource_tracker.unregister
        resource_tracker.unregister = lambda *args, **kwargs: None
        try:
            segment.unlink()
        finally:
            resource_tracker.unregister = original


def segment_name(session: str, source: int, dest: int) -> str:
    """Shared-memory segment name of the ``source -> dest`` ring."""
    return f"{session}-{source}to{dest}"


def _session_name() -> str:
    """Per-run namespace for segment names; embeds the launcher PID.

    The PID is what lets :func:`sweep_stale_segments` distinguish a
    segment belonging to a live concurrent run from garbage left by a
    crashed one.
    """
    return f"{_NAME_PREFIX}-{os.getpid()}-{secrets.token_hex(4)}"


def sweep_stale_segments(shm_dir: str = _SHM_DIR) -> List[str]:
    """Unlink ring segments whose creating process is gone.

    A crashed launcher (SIGKILL, OOM) cannot run its ``finally`` sweep;
    its segments would pin ``/dev/shm`` pages forever and, across many
    crashes, poison later runs with exhausted shared memory.  Segment
    names embed the launcher PID, so any segment whose owner is no
    longer alive is garbage by construction.  Returns the names removed.
    """
    removed: List[str] = []
    try:
        entries = os.listdir(shm_dir)
    except OSError:
        return removed
    for entry in entries:
        if not entry.startswith(_NAME_PREFIX + "-"):
            continue
        parts = entry.split("-")
        try:
            pid = int(parts[2])
        except (IndexError, ValueError):
            continue
        if pid == os.getpid() or _pid_alive(pid):
            continue
        try:
            os.unlink(os.path.join(shm_dir, entry))
            removed.append(entry)
        except OSError:
            pass
    if removed:
        logger.info("swept %d stale shm ring segment(s)", len(removed))
    return removed


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - someone else's live pid
        return True
    except OSError as exc:  # pragma: no cover - exotic errnos
        return exc.errno != errno.ESRCH
    return True


# ---------------------------------------------------------------------------
# the ring
# ---------------------------------------------------------------------------
#: Bound structs for header-cell access: ~3x faster per access than
#: numpy scalar indexing, which sits on every message's critical path.
_U64 = struct.Struct("<Q")
_U32 = struct.Struct("<I")


class _Ring:
    """One single-producer/single-consumer byte ring in shared memory.

    Each side constructs its own view of the same segment (the consumer
    creates it, the producer attaches).  All cursor arithmetic uses the
    free-running 64-bit counters described in the module docstring;
    data moves with raw ``memoryview`` slice assignment (C memcpy).
    """

    def __init__(self, shm, capacity: int) -> None:
        self._shm = shm
        self.capacity = int(capacity)
        self._buf = shm.buf
        self._data = shm.buf[_RING_HEADER_BYTES : _RING_HEADER_BYTES + self.capacity]

    # ------------------------------------------------------------ lifecycle
    @classmethod
    def create(cls, name: str, ring_bytes: int) -> "_Ring":
        shm = _open_segment(name, create=True, size=_RING_HEADER_BYTES + ring_bytes)
        shm.buf[:_RING_HEADER_BYTES] = bytes(_RING_HEADER_BYTES)
        return cls(shm, ring_bytes)

    @classmethod
    def attach(cls, name: str, ring_bytes: int) -> "_Ring":
        return cls(_open_segment(name, create=False), ring_bytes)

    def detach(self) -> None:
        # Views alias shm.buf; drop them before closing the mapping or
        # SharedMemory.close() raises BufferError on exported pointers.
        data, self._data, self._buf = self._data, None, None
        if data is not None:
            data.release()
        try:
            self._shm.close()
        except (OSError, BufferError):  # pragma: no cover - teardown race
            pass

    # ------------------------------------------------------------- cursors
    @property
    def head(self) -> int:
        return _U64.unpack_from(self._buf, _OFF_HEAD)[0]

    @property
    def tail(self) -> int:
        return _U64.unpack_from(self._buf, _OFF_TAIL)[0]

    def readable(self) -> int:
        buf = self._buf
        return _U64.unpack_from(buf, _OFF_TAIL)[0] - _U64.unpack_from(buf, _OFF_HEAD)[0]

    def writable(self) -> int:
        return self.capacity - self.readable()

    # --------------------------------------------------------------- flags
    def _flag(self, offset: int) -> bool:
        return _U32.unpack_from(self._buf, offset)[0] != 0

    def _set_flag(self, offset: int, value: bool) -> None:
        _U32.pack_into(self._buf, offset, 1 if value else 0)

    @property
    def consumer_closed(self) -> bool:
        return self._flag(_OFF_CCLOSED)

    @property
    def producer_closed(self) -> bool:
        return self._flag(_OFF_PCLOSED)

    def close_consumer(self) -> None:
        self._set_flag(_OFF_CCLOSED, True)

    def close_producer(self) -> None:
        self._set_flag(_OFF_PCLOSED, True)

    def set_consumer_waiting(self, value: bool) -> None:
        self._set_flag(_OFF_CWAIT, value)

    def set_producer_waiting(self, value: bool) -> None:
        self._set_flag(_OFF_PWAIT, value)

    @property
    def consumer_waiting(self) -> bool:
        return self._flag(_OFF_CWAIT)

    @property
    def producer_waiting(self) -> bool:
        return self._flag(_OFF_PWAIT)

    # ------------------------------------------------------------- produce
    def write_some(self, view: memoryview) -> int:
        """Copy as much of ``view`` as currently fits; returns bytes written.

        Data is copied *before* the tail is published, so the consumer
        can never observe unwritten bytes.
        """
        buf = self._buf
        tail = _U64.unpack_from(buf, _OFF_TAIL)[0]
        span = min(
            self.capacity - (tail - _U64.unpack_from(buf, _OFF_HEAD)[0]), len(view)
        )
        if span <= 0:
            return 0
        pos = tail % self.capacity
        first = min(span, self.capacity - pos)
        data = self._data
        data[pos : pos + first] = view[:first]
        if span > first:
            data[: span - first] = view[first:span]
        _U64.pack_into(buf, _OFF_TAIL, tail + span)
        return span

    # ------------------------------------------------------------- consume
    def read_some(self, view: memoryview) -> int:
        """Fill ``view`` with up to ``len(view)`` ring bytes; returns count."""
        buf = self._buf
        head = _U64.unpack_from(buf, _OFF_HEAD)[0]
        span = min(_U64.unpack_from(buf, _OFF_TAIL)[0] - head, len(view))
        if span <= 0:
            return 0
        pos = head % self.capacity
        first = min(span, self.capacity - pos)
        data = self._data
        view[:first] = data[pos : pos + first]
        if span > first:
            view[first:span] = data[: span - first]
        _U64.pack_into(buf, _OFF_HEAD, head + span)
        return span


# ---------------------------------------------------------------------------
# incremental frame parsing (consumer side)
# ---------------------------------------------------------------------------
class _FrameParser:
    """Per-ring reassembly state: frames may arrive in arbitrary pieces."""

    def __init__(self) -> None:
        self._reset()

    def _reset(self) -> None:
        self.stage = "len"
        self.scratch: Any = bytearray(_HEADER_LEN.size)
        self.view = memoryview(self.scratch)
        self.got = 0
        self.header: Optional[Tuple] = None

    @property
    def idle(self) -> bool:
        """Whether the parser sits at a frame boundary (nothing buffered)."""
        return self.stage == "len" and self.got == 0

    def feed(self, ring: _Ring) -> Optional[Tuple[Message, str]]:
        """Advance parsing with whatever the ring holds.

        Returns one completed ``(message, channel)`` per call, or
        ``None`` when the ring ran dry mid-frame (state is kept; the
        next call resumes exactly where this one starved)."""
        while True:
            if self.got < len(self.view):
                self.got += ring.read_some(self.view[self.got :])
                if self.got < len(self.view):
                    return None  # starved mid-field; resume on next pump
            if self.stage == "len":
                (need,) = _HEADER_LEN.unpack(bytes(self.scratch))
                self.stage = "head"
                self.scratch = bytearray(need)
                self.view = memoryview(self.scratch)
                self.got = 0
            elif self.stage == "head":
                self.header = pickle.loads(bytes(self.scratch))
                _channel, _src, _dst, _tag, _seq, kind, dtype, _shape, nbytes = (
                    self.header
                )
                self.stage = "payload"
                self.scratch, self.view = payload_scratch(kind, dtype, nbytes)
                self.got = 0
            else:
                channel, source, dest, tag, seq, kind, _dtype, shape, _n = self.header
                payload = payload_finish(kind, shape, self.scratch)
                message = Message(
                    source=source, dest=dest, tag=tag, payload=payload, seq=seq
                )
                self._reset()
                return message, channel


# ---------------------------------------------------------------------------
# the endpoint
# ---------------------------------------------------------------------------
class _PumpingMailbox(Mailbox):
    """Mailbox whose blocked receivers drive ring progress themselves.

    The naive layering — producer rings a doorbell, a progress thread
    wakes, parses, puts, notifies the application thread — costs two
    thread wake-ups (and two GIL handoffs) per message; the raw ring
    round-trips in ~10 us, the layered path in ~150.  Work stealing
    removes the middleman: a receiver that would block first tries to
    take the endpoint's pump lock and drain the rings *in its own
    context*, so the common lockstep pattern (every rank blocked in
    ``recv``) runs producer-to-consumer with a single wake-up.  The
    transport has no progress thread at all: every place a thread would
    otherwise idle pumps instead — blocked receives here, blocked sends
    in :meth:`ShmEndpoint._write_all` (which also breaks the
    mutual-full-ring deadlock of two ranks sending at once), and
    :meth:`poll` / :meth:`probe` opportunistically, so poll loops
    observe arrivals without a background drainer.
    """

    def __init__(self, owner_rank: int, channel: str, endpoint: "ShmEndpoint") -> None:
        super().__init__(owner_rank, channel)
        self._endpoint = endpoint

    def get(self, source: int = -1, tag: int = -1, timeout: Optional[float] = None):
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._cond:
                msg = self._find(source, tag)
                if msg is not None:
                    return msg
                if self._closed:
                    raise MailboxClosed(
                        f"mailbox rank={self.owner_rank} channel={self.channel} "
                        "closed while waiting for a message"
                    )
            remaining = None if deadline is None else deadline - time.monotonic()
            if remaining is not None and remaining <= 0:
                raise TimeoutError(
                    f"rank {self.owner_rank}/{self.channel}: timed out waiting "
                    f"for message from source={source} tag={tag}"
                )
            self._endpoint._progress_or_wait(self, source, tag, remaining)

    def poll(self, source: int = -1, tag: int = -1):
        msg = super().poll(source, tag)
        if msg is None and self._endpoint._try_pump():
            msg = super().poll(source, tag)
        return msg

    def probe(self, source: int = -1, tag: int = -1) -> bool:
        if super().probe(source, tag):
            return True
        return self._endpoint._try_pump() and super().probe(source, tag)


class ShmEndpoint(MeshEndpoint):
    """One rank's view of the shared-memory ring mesh.

    Inbound rings (one per peer, created by this rank) are drained by
    whichever thread holds the *pump lock* — a blocked receiver, a
    sender waiting out a full ring, or a ``poll``/``probe`` caller (see
    :class:`_PumpingMailbox`; there is no background progress thread to
    wake or hand the GIL to).  Outbound rings (attached) are written
    directly by whichever thread calls :meth:`deliver`, serialised by a
    per-ring lock (the rings are SPSC — the lock makes this *process*
    the single producer even when the app, library and activation
    threads send concurrently).  Ring capacity bounds the in-flight
    bytes per pair: a sender outrunning a never-receiving peer
    eventually blocks on its ring, the same backpressure a socket
    transport gets from full kernel buffers.
    """

    def __init__(
        self,
        rank: int,
        world_size: int,
        channels: Sequence[str],
        data_events: Sequence,
        space_events: Sequence,
    ) -> None:
        #: Serialises ring consumption, parser state and parking across
        #: stealing receivers (set before ``super().__init__`` — it
        #: creates the pumping mailboxes).
        self._pump_lock = threading.Lock()
        self._finished: set[int] = set()
        self._detached = False
        super().__init__(rank, world_size, channels)
        #: ``data_events[r]`` wakes rank ``r``'s parked consumers when
        #: its rings gain data; ours is ``data_events[rank]``.
        self._data_events = list(data_events)
        self._data_event = self._data_events[rank]
        #: ``space_events[r]`` wakes rank ``r`` blocked on a full ring.
        self._space_events = list(space_events)
        self._spin = _spin_iterations(world_size)
        self._inbound: Dict[int, _Ring] = {}
        self._outbound: Dict[int, _Ring] = {}
        self._send_locks: Dict[int, threading.Lock] = {}
        self._parsers: Dict[int, _FrameParser] = {}

    # ----------------------------------------------------------- plumbing
    def _make_mailbox(self, rank: int, channel: str) -> Mailbox:
        return _PumpingMailbox(rank, channel, self)

    def attach_inbound(self, peer: int, ring: _Ring) -> None:
        self._inbound[peer] = ring
        self._parsers[peer] = _FrameParser()

    def attach_outbound(self, peer: int, ring: _Ring) -> None:
        self._outbound[peer] = ring
        self._send_locks[peer] = threading.Lock()

    # --------------------------------------------------------------- send
    def _send_frame(self, message: Message, channel: str) -> None:
        dest = message.dest
        ring = self._outbound.get(dest)
        if ring is None:
            return
        head, body = pack_frame(message, channel)
        # One buffer for length prefix + header, and exactly ONE doorbell
        # per frame, after the last byte: ringing per chunk would wake
        # (and, on a loaded machine, preempt into) the consumer up to
        # three times per message — mid-frame, with nothing parseable.
        prefix = _HEADER_LEN.pack(len(head)) + head
        with self._send_locks[dest]:
            delivered = self._write_all(dest, ring, memoryview(prefix))
            if delivered and len(body):
                delivered = self._write_all(
                    dest, ring, body if isinstance(body, memoryview) else memoryview(body)
                )
            if delivered and ring.consumer_waiting:
                self._data_events[dest].ring()

    def _write_all(self, dest: int, ring: _Ring, view: memoryview) -> bool:
        """Stream ``view`` into the ring, spin-then-event on a full ring.

        Returns ``False`` when the peer departed (the remainder of the
        frame evaporates, mirroring a socket send hitting EPIPE) and
        raises :class:`MailboxClosed` when *this* endpoint was aborted
        while blocked.
        """
        offset = 0
        total = len(view)
        spins = 0
        while offset < total:
            if ring.consumer_closed:
                self._departed.add(dest)
                return False
            wrote = ring.write_some(view[offset:])
            if wrote:
                offset += wrote
                spins = 0
                continue
            if self._closed:
                raise MailboxClosed(
                    f"rank {self.rank}: endpoint closed while sending to {dest}"
                    + (f" ({self._abort_reason})" if self._abort_reason else "")
                )
            # The ring is full: the consumer must drain before more fits,
            # so this is the one mid-frame point that must wake it.
            if ring.consumer_waiting:
                self._data_events[dest].ring()
            # Pump our own inbound rings while starved: two ranks
            # flooding each other would otherwise deadlock on two full
            # rings with both app threads stuck in send.
            if self._try_pump():
                continue
            spins += 1
            if spins <= self._spin:
                time.sleep(0)  # yield: the consumer needs this CPU
                continue
            # Event fallback: flag, re-check, sleep a bounded slice.
            ring.set_producer_waiting(True)
            try:
                if ring.writable() == 0 and not ring.consumer_closed and not self._closed:
                    self._space_events[self.rank].wait(_WAIT_SLICE)
            finally:
                ring.set_producer_waiting(False)
        return True

    # ----------------------------------------------------------- receive
    def _pump_once(self) -> bool:
        """One draining pass over every inbound ring (pump lock held).

        Parses and delivers every complete frame currently available;
        returns whether anything moved.
        """
        progressed = False
        if self._detached:
            return False
        unpack = _U64.unpack_from
        for peer, ring in self._inbound.items():
            if peer in self._finished:
                continue
            # Inline emptiness test (the common case for most rings of a
            # pass): one pair of header reads instead of a parser call
            # chain per idle ring.
            buf = ring._buf  # noqa: SLF001 - same-module hot path
            if unpack(buf, _OFF_TAIL)[0] == unpack(buf, _OFF_HEAD)[0]:
                if _U32.unpack_from(buf, _OFF_PCLOSED)[0]:
                    # Drained ring + closed producer = socket EOF.  A
                    # partial frame left in the parser mirrors a reset
                    # mid-frame: the peer crashed; the launcher aborts
                    # the world, we just stop reading this ring.
                    self._finished.add(peer)
                    self._departed.add(peer)
                continue
            parser = self._parsers[peer]
            try:
                while True:
                    outcome = parser.feed(ring)
                    if outcome is None:
                        break
                    message, channel = outcome
                    progressed = True
                    try:
                        self.mailbox(self.rank, channel).put(message)
                    except MailboxClosed:
                        return progressed  # aborted while delivering
            except (pickle.UnpicklingError, EOFError, ValueError) as exc:
                # The stream is unreadable but both processes live — the
                # launcher cannot see this, so wake the local rank ourselves.
                if not self._closed:
                    self.abort(f"corrupted stream from rank {peer}: {exc}")
                return progressed
            if _U32.unpack_from(buf, _OFF_PWAIT)[0]:
                self._space_events[peer].ring()
        return progressed

    def _park(self, seconds: float) -> None:
        """Sleep on the data doorbell until a producer has news.

        Callers hold the pump lock, so at most one thread parks at a
        time.  Arm the consumer-waiting flags (so producers start
        ringing), re-check — the readable re-check between arming and
        sleeping closes the publish/park race — then sleep and disarm.
        """
        pack, unpack = _U32.pack_into, _U64.unpack_from
        rings = list(self._inbound.values())
        for ring in rings:
            pack(ring._buf, _OFF_CWAIT, 1)  # noqa: SLF001
        try:
            if not self._closed and not any(
                unpack(ring._buf, _OFF_TAIL)[0] != unpack(ring._buf, _OFF_HEAD)[0]
                for ring in rings
            ):
                self._data_event.wait(min(seconds, _WAIT_SLICE))
        finally:
            for ring in rings:
                pack(ring._buf, _OFF_CWAIT, 0)  # noqa: SLF001

    def _try_pump(self) -> bool:
        """Nonblocking pump: drain the rings if nobody else is.

        Returns whether anything moved (``False`` also when another
        thread holds the pump — its progress counts as progress for
        retry loops, but callers must not assume their message arrived).
        """
        if not self._pump_lock.acquire(blocking=False):
            return False
        try:
            return self._pump_once()
        finally:
            self._pump_lock.release()

    def _progress_or_wait(
        self, mailbox: Mailbox, source: int, tag: int, remaining: Optional[float]
    ) -> None:
        """One blocked-receiver iteration: steal the pump or wait briefly.

        Called by :class:`_PumpingMailbox` with the mailbox lock
        released.  Either drains the rings in this thread's context or —
        when another thread is already pumping — waits for its
        ``put``-notification on the mailbox condition.  Returns with no
        verdict; the caller re-checks its mailbox and deadline.
        """
        slice_seconds = _WAIT_SLICE if remaining is None else min(remaining, _WAIT_SLICE)
        rings_drained = False
        if self._pump_lock.acquire(blocking=False):
            try:
                if self._pump_once():
                    return
                if self._closed or len(self._finished) == len(self._inbound):
                    # Nothing will ever arrive from the rings (every
                    # peer departed, or P=1); wait below, off the lock.
                    rings_drained = True
                else:
                    # A pumper that ran between our mailbox check and
                    # the lock acquisition may have delivered the wanted
                    # message already; never park over an unread match.
                    if Mailbox.probe(mailbox, source, tag):
                        return
                    self._park(slice_seconds)
            finally:
                self._pump_lock.release()
            if rings_drained:
                # Local same-rank deliveries still notify the mailbox
                # condition; sleep on it instead of burning the CPU
                # down the caller's deadline.
                with mailbox._cond:  # noqa: SLF001 - cooperating classes
                    if not mailbox._messages and not mailbox._closed:
                        mailbox._cond.wait(slice_seconds)
        else:
            # Someone else pumps; their put() will notify this condition.
            with mailbox._cond:  # noqa: SLF001 - cooperating classes
                if not mailbox._messages and not mailbox._closed:
                    mailbox._cond.wait(min(slice_seconds, 0.002))

    # -------------------------------------------------------------- close
    def _shutdown_transport(self) -> None:
        for ring in self._outbound.values():
            try:
                ring.close_producer()
            except TypeError:  # pragma: no cover - already detached
                pass
        for ring in self._inbound.values():
            try:
                ring.close_consumer()
            except TypeError:  # pragma: no cover - already detached
                pass
        # Wake anything sleeping on our events so teardown is prompt.
        self._data_event.ring()
        self._space_events[self.rank].ring()
        for peer, ring in self._outbound.items():
            if ring.consumer_waiting:
                self._data_events[peer].ring()
        for peer, ring in self._inbound.items():
            if ring.producer_waiting:
                self._space_events[peer].ring()

    def _join_receivers(self) -> None:
        """Release the shared-memory mappings exactly once.

        Taking the pump lock and every send lock first guarantees no
        thread is mid-access on a ring; late pump attempts see
        ``_detached`` and no-op, late sends see ``_closed`` and raise.
        """
        locks = [self._pump_lock, *self._send_locks.values()]
        for lock in locks:
            lock.acquire()
        try:
            if self._detached:
                return
            self._detached = True
            for ring in list(self._inbound.values()) + list(self._outbound.values()):
                ring.detach()
        finally:
            for lock in reversed(locks):
                lock.release()


# ---------------------------------------------------------------------------
# mesh establishment (runs inside each rank process)
# ---------------------------------------------------------------------------
def _build_shm_mesh(
    rank: int,
    world_size: int,
    channels: Sequence[str],
    rendezvous_addr: Tuple[str, int],
    session: str,
    ring_bytes: int,
    data_events: Sequence,
    space_events: Sequence,
) -> ShmEndpoint:
    endpoint = ShmEndpoint(rank, world_size, channels, data_events, space_events)
    if world_size == 1:
        return endpoint

    # Create this rank's inbound rings, then rendezvous: the seed's
    # collect-and-broadcast doubles as the "every segment exists"
    # barrier, so attaching below can never race a missing segment.
    for peer in range(world_size):
        if peer != rank:
            endpoint.attach_inbound(
                peer, _Ring.create(segment_name(session, peer, rank), ring_bytes)
            )
    _rendezvous(rank, world_size, rendezvous_addr, "ready")
    for peer in range(world_size):
        if peer != rank:
            endpoint.attach_outbound(
                peer, _Ring.attach(segment_name(session, rank, peer), ring_bytes)
            )
    return endpoint


# ---------------------------------------------------------------------------
# the backend (launcher side)
# ---------------------------------------------------------------------------
class ShmBackend(ProcessBackend):
    """One OS process per rank over shared-memory SPSC rings.

    Inherits the fork/monitor/abort launcher of
    :class:`~repro.comm.process_backend.ProcessBackend` wholesale; only
    the transport hooks differ — allocate the session namespace and the
    per-rank events before forking, hand each worker the shm mesh
    builder, and unlink every segment afterwards.
    """

    name = "shm"

    def _setup_world(self, ctx, world_size: int, opts: Dict[str, Any]) -> Dict[str, Any]:
        opts = dict(opts)
        ring_bytes = int(opts.pop("ring_bytes", DEFAULT_RING_BYTES))
        if ring_bytes < MIN_RING_BYTES:
            raise ValueError(
                f"ring_bytes must be >= {MIN_RING_BYTES}, got {ring_bytes}"
            )
        setup = super()._setup_world(ctx, world_size, opts)
        sweep_stale_segments()
        session = _session_name()
        setup.update(
            session=session,
            ring_bytes=ring_bytes,
            world_size=world_size,
            data_events=[_Doorbell() for _ in range(world_size)],
            space_events=[_Doorbell() for _ in range(world_size)],
            sweep=_register_session_sweep(session, world_size),
        )
        return setup

    def _mesh_builder(self) -> Callable[..., MeshEndpoint]:
        return _build_shm_mesh

    def _mesh_args(self, setup: Dict[str, Any], rank: int) -> Tuple[Any, ...]:
        return (
            setup["addr"],
            setup["session"],
            setup["ring_bytes"],
            setup["data_events"],
            setup["space_events"],
        )

    def _cleanup_world(self, setup: Dict[str, Any]) -> None:
        sweep = setup.get("sweep")
        if sweep is not None:
            sweep()
            atexit.unregister(sweep)
        # Close the launcher's doorbell fds (4 per rank): every rank has
        # exited by now, and without this each run() would leak them.
        for bell in setup.get("data_events", ()) + setup.get("space_events", ()):
            bell.close()


def _register_session_sweep(session: str, world_size: int) -> Callable[[], None]:
    """An idempotent unlink-everything sweep, also armed via ``atexit``.

    The ``finally`` in :meth:`ProcessBackend.run` calls it on every exit
    path; the ``atexit`` registration covers the launcher dying between
    segment creation and that ``finally`` (e.g. a KeyboardInterrupt in
    a signal-unsafe spot).
    """

    def sweep() -> None:
        for source in range(world_size):
            for dest in range(world_size):
                if source == dest:
                    continue
                try:
                    segment = _open_segment(
                        segment_name(session, source, dest), create=False
                    )
                except (FileNotFoundError, OSError):
                    continue
                try:
                    segment.close()
                    _unlink_segment(segment)
                except OSError:  # pragma: no cover - concurrent unlink
                    pass

    atexit.register(sweep)
    return sweep


# ---------------------------------------------------------------------------
# registration (capability-gated)
# ---------------------------------------------------------------------------
_UNAVAILABLE_REASON = _probe()
if _UNAVAILABLE_REASON is None:
    register_backend("shm")(ShmBackend)
else:  # pragma: no cover - exercised only on platforms without shm
    logger.info(
        "shm comm backend disabled on this platform: %s", _UNAVAILABLE_REASON
    )
    mark_backend_unavailable("shm", _UNAVAILABLE_REASON)
