"""In-process router connecting all rank mailboxes.

The router is the "network": a send is a copy of the payload followed by a
``put`` into the destination mailbox.  Each rank owns one mailbox per
*channel*; channels keep the traffic of the application thread and of the
communication-library progress thread (Section 4.3 of the paper) disjoint,
so that a partial collective progressing in the background can never steal
messages intended for a synchronous collective issued by the application,
and vice versa.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.comm.mailbox import Mailbox
from repro.comm.message import Message


@dataclass(frozen=True)
class Channel:
    """Well-known channel names."""

    APP: str = "app"
    LIB: str = "lib"
    ACTIVATION: str = "activation"


#: Channels created by default for every rank.
DEFAULT_CHANNELS: Tuple[str, ...] = (Channel.APP, Channel.LIB, Channel.ACTIVATION)


class Router:
    """Delivers messages between ranks inside one process.

    Parameters
    ----------
    world_size:
        Number of ranks.
    channels:
        Channel names to create for every rank.
    """

    def __init__(
        self, world_size: int, channels: Iterable[str] = DEFAULT_CHANNELS
    ) -> None:
        if world_size < 1:
            raise ValueError(f"world_size must be >= 1, got {world_size}")
        self.world_size = int(world_size)
        self.channels: Tuple[str, ...] = tuple(channels)
        if not self.channels:
            raise ValueError(f"at least one channel is required, got {channels!r}")
        self._mailboxes: Dict[Tuple[int, str], Mailbox] = {
            (rank, ch): Mailbox(rank, ch)
            for rank in range(self.world_size)
            for ch in self.channels
        }
        self._seq = itertools.count()
        self._lock = threading.Lock()
        self._message_count = 0
        self._byte_count = 0
        self._closed = False

    # ------------------------------------------------------------- access
    def mailbox(self, rank: int, channel: str) -> Mailbox:
        """Return the mailbox for ``(rank, channel)``.

        Channels of the form ``"<known>.<suffix>"`` — a declared channel
        name plus a dotted suffix — are created on first use (for every
        rank of the world, so sender and receiver always agree on the
        endpoint set).  Dynamic sub-channels let higher layers open
        private lanes, e.g. one ``lib.bucketN``/``activation.bucketN``
        pair per fusion bucket of the gradient exchange, without
        pre-declaring them at world creation.  A name whose base is not a
        declared channel still raises ``KeyError`` immediately, so typos
        fail fast instead of stalling a receiver on an empty mailbox.
        """
        self._check_rank(rank)
        mailbox = self._mailboxes.get((rank, channel))
        if mailbox is None:
            base = channel.split(".", 1)[0]
            with self._lock:
                if channel not in self.channels:
                    if base == channel or base not in self.channels:
                        raise KeyError(
                            f"unknown channel {channel!r}; available: "
                            f"{self.channels} (plus '<known>.<suffix>' "
                            f"dynamic sub-channels)"
                        )
                    for r in range(self.world_size):
                        box = Mailbox(r, channel)
                        if self._closed:
                            box.close()
                        self._mailboxes[(r, channel)] = box
                    self.channels = self.channels + (channel,)
            mailbox = self._mailboxes[(rank, channel)]
        return mailbox

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.world_size:
            raise ValueError(
                f"rank {rank} out of range for world of size {self.world_size}"
            )

    # ------------------------------------------------------------ deliver
    def deliver(self, message: Message, channel: str) -> None:
        """Route ``message`` to its destination mailbox on ``channel``."""
        self._check_rank(message.dest)
        self._check_rank(message.source)
        message.seq = next(self._seq)
        with self._lock:
            self._message_count += 1
            self._byte_count += message.nbytes()
        self.mailbox(message.dest, channel).put(message)

    # ------------------------------------------------------------- stats
    @property
    def message_count(self) -> int:
        """Total number of messages delivered so far."""
        with self._lock:
            return self._message_count

    @property
    def byte_count(self) -> int:
        """Total number of array payload bytes delivered so far."""
        with self._lock:
            return self._byte_count

    def pending_messages(self) -> int:
        """Number of delivered-but-unreceived messages across all mailboxes."""
        with self._lock:
            mailboxes = list(self._mailboxes.values())
        return sum(mb.pending() for mb in mailboxes)

    # -------------------------------------------------------------- close
    def close(self) -> None:
        """Close every mailbox (wakes all blocked receivers).

        Dynamic sub-channels created after (or concurrently with) the
        close are born closed, so a straggler rank blocked on one is
        woken with :class:`~repro.comm.mailbox.MailboxClosed` instead of
        hanging until its receive timeout.
        """
        with self._lock:
            self._closed = True
            mailboxes = list(self._mailboxes.values())
        for mb in mailboxes:
            mb.close()
