"""Hierarchical composite transport: shm rings intra-host, sockets inter.

The fourth process-model backend composes the two existing byte pipes
according to a **host topology** (an explicit rank -> host map): frames
between ranks on the same host travel the shared-memory SPSC rings of
:mod:`repro.comm.shm_backend`, frames that cross hosts travel the TCP
sockets of :mod:`repro.comm.process_backend`.  Both halves speak the
same wire format, so the split is invisible above the
:class:`~repro.comm.backend.RouterLike` surface — except that the
endpoint *exposes* the topology as ``host_topology``, which is what the
topology-aware collectives (:func:`repro.collectives.sync.allreduce_hierarchical`)
query to keep non-leader traffic off the slow links.

The topology arrives via ``backend_opts={"host_topology": ...}`` (a
:class:`~repro.collectives.topology.HostTopology`, a rank -> host label
sequence, or a ``"0,0,1,1"`` spec string) or the
``REPRO_HOST_TOPOLOGY`` environment variable, and defaults to
single-host — in which case the backend degenerates to the plain shm
transport (every pair rides a ring).  On one physical machine a
multi-host topology is *simulated*: the rank pairs labelled inter-host
use loopback sockets, which is exactly how the hierarchical collectives
and the two-tier cost model are validated and benchmarked without a
cluster.

Latency note: a rank blocked in ``recv`` parks on its shm doorbell (see
the shm module's spin-then-event design); a socket receiver thread that
delivers a frame rings that doorbell too, so inter-host arrivals wake a
parked consumer immediately instead of waiting out the park slice.

Gated like ``shm``: platforms without the ring transport get
``BackendUnavailableError`` and the name is absent from
``available_backends()``.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

from repro.collectives.topology import HostTopology
from repro.comm.backend import mark_backend_unavailable, register_backend
from repro.comm.message import Message
from repro.comm.process_backend import (
    _RANK_ID,
    _SETUP_TIMEOUT,
    MeshEndpoint,
    SocketPeerMixin,
    _bind_listener,
    _connect_with_retry,
    _read_exact,
    _rendezvous,
)
from repro.comm.shm_backend import (
    _UNAVAILABLE_REASON as _SHM_UNAVAILABLE_REASON,
    _Ring,
    ShmBackend,
    ShmEndpoint,
    segment_name,
)

__all__ = ["HierBackend", "HierEndpoint", "HOST_TOPOLOGY_ENV_VAR", "resolve_topology"]

#: Environment variable carrying a ``"0,0,1,1"``-style rank -> host spec.
HOST_TOPOLOGY_ENV_VAR = "REPRO_HOST_TOPOLOGY"


def resolve_topology(spec: Any, world_size: int) -> HostTopology:
    """Normalise a topology option to a validated :class:`HostTopology`.

    ``None`` consults ``REPRO_HOST_TOPOLOGY`` and falls back to
    single-host.  Strings parse as comma-separated host labels; any
    other sequence is taken as the rank -> host label map directly.
    """
    if spec is None:
        env = os.environ.get(HOST_TOPOLOGY_ENV_VAR)
        topology = (
            HostTopology.from_string(env) if env else HostTopology.single_host(world_size)
        )
    elif isinstance(spec, HostTopology):
        topology = spec
    elif isinstance(spec, str):
        topology = HostTopology.from_string(spec)
    else:
        topology = HostTopology(spec)
    if topology.world_size != world_size:
        raise ValueError(
            f"host topology covers {topology.world_size} rank(s) but the "
            f"world has {world_size}"
        )
    return topology


# ---------------------------------------------------------------------------
# the composite endpoint
# ---------------------------------------------------------------------------
class HierEndpoint(SocketPeerMixin, ShmEndpoint):
    """One rank's view of the two-tier mesh.

    Same-host peers are reached through the inherited shm rings (with
    the work-stealing pump of :class:`ShmEndpoint`); cross-host peers
    through the mixin's per-peer sockets.  ``host_topology`` is the
    public attribute collectives discover via ``comm.router``.
    """

    def __init__(
        self,
        rank: int,
        world_size: int,
        channels: Sequence[str],
        data_events: Sequence,
        space_events: Sequence,
        topology: HostTopology,
    ) -> None:
        super().__init__(rank, world_size, channels, data_events, space_events)
        self._init_socket_peers()
        #: The rank -> host map of this world (queried by collectives).
        self.host_topology = topology
        self._local_peers = frozenset(topology.local_ranks(rank)) - {rank}

    # --------------------------------------------------------------- send
    def _send_frame(self, message: Message, channel: str) -> None:
        if message.dest in self._local_peers:
            ShmEndpoint._send_frame(self, message, channel)
        else:
            self._send_socket_frame(message, channel)

    # ----------------------------------------------------------- receive
    def _notify_socket_delivery(self) -> None:
        # A consumer blocked in recv may be parked on the shm doorbell
        # (not the mailbox condition); ring it so socket arrivals have
        # socket latency, not park-slice latency.
        self._data_event.ring()

    # -------------------------------------------------------------- close
    def _shutdown_transport(self) -> None:
        ShmEndpoint._shutdown_transport(self)
        self._shutdown_socket_peers()

    def _join_receivers(self) -> None:
        self._join_socket_receivers()
        ShmEndpoint._join_receivers(self)


# ---------------------------------------------------------------------------
# mesh establishment (runs inside each rank process)
# ---------------------------------------------------------------------------
def _build_hier_mesh(
    rank: int,
    world_size: int,
    channels: Sequence[str],
    rendezvous_addr: Tuple[str, int],
    session: str,
    ring_bytes: int,
    data_events: Sequence,
    space_events: Sequence,
    topology: HostTopology,
    bind_host: str = "127.0.0.1",
) -> HierEndpoint:
    endpoint = HierEndpoint(
        rank, world_size, channels, data_events, space_events, topology
    )
    if world_size == 1:
        return endpoint

    local_peers = sorted(endpoint._local_peers)
    remote_peers = sorted(set(range(world_size)) - set(topology.local_ranks(rank)))

    # Create this rank's inbound rings (same-host pairs only), then
    # rendezvous: the seed's collect-and-broadcast is simultaneously the
    # "all segments exist" barrier and the data-address exchange.
    for peer in local_peers:
        endpoint.attach_inbound(
            peer, _Ring.create(segment_name(session, peer, rank), ring_bytes)
        )

    data_listener = None
    my_addr: Optional[Tuple[str, int]] = None
    if remote_peers:
        data_listener = _bind_listener((bind_host, 0), backlog=world_size)
        data_listener.settimeout(_SETUP_TIMEOUT)
        my_addr = data_listener.getsockname()[:2]

    addr_map = _rendezvous(rank, world_size, rendezvous_addr, my_addr)

    for peer in local_peers:
        endpoint.attach_outbound(
            peer, _Ring.attach(segment_name(session, rank, peer), ring_bytes)
        )

    # Cross-host links: dial the higher ranks, accept the lower ones.
    for peer in (p for p in remote_peers if p > rank):
        sock = _connect_with_retry(
            tuple(addr_map[peer]), _SETUP_TIMEOUT, what=f"rank {peer}"
        )
        sock.sendall(_RANK_ID.pack(rank))
        endpoint.attach_peer(peer, sock)
    for _ in (p for p in remote_peers if p < rank):
        sock, _ = data_listener.accept()
        sock.settimeout(_SETUP_TIMEOUT)
        raw = _read_exact(sock, _RANK_ID.size)
        if raw is None:
            raise ConnectionResetError("mesh peer closed during handshake")
        (peer,) = _RANK_ID.unpack(raw)
        endpoint.attach_peer(int(peer), sock)
    if data_listener is not None:
        data_listener.close()
    return endpoint


# ---------------------------------------------------------------------------
# the backend (launcher side)
# ---------------------------------------------------------------------------
class HierBackend(ShmBackend):
    """Two-tier transport: shm rings intra-host, TCP sockets inter-host.

    Inherits the shm launcher (session namespace, doorbells, segment
    sweep) and adds the topology option plus the socket half of the
    mesh.  Options: ``host_topology`` (see :func:`resolve_topology`),
    ``ring_bytes``, ``bind_host`` and the inherited ``start_method``.
    """

    name = "hier"

    def _setup_world(self, ctx, world_size: int, opts: Dict[str, Any]) -> Dict[str, Any]:
        opts = dict(opts)
        topology = resolve_topology(opts.pop("host_topology", None), world_size)
        bind_host = str(opts.pop("bind_host", "127.0.0.1"))
        setup = super()._setup_world(ctx, world_size, opts)
        setup["topology"] = topology
        setup["bind_host"] = bind_host
        return setup

    def _mesh_builder(self) -> Callable[..., MeshEndpoint]:
        return _build_hier_mesh

    def _mesh_args(self, setup: Dict[str, Any], rank: int) -> Tuple[Any, ...]:
        return super()._mesh_args(setup, rank) + (
            setup["topology"],
            setup["bind_host"],
        )


# ---------------------------------------------------------------------------
# registration (capability-gated, same probe as shm)
# ---------------------------------------------------------------------------
if _SHM_UNAVAILABLE_REASON is None:
    register_backend("hier")(HierBackend)
else:  # pragma: no cover - exercised only on platforms without shm
    mark_backend_unavailable(
        "hier",
        f"requires the shared-memory ring transport: {_SHM_UNAVAILABLE_REASON}",
    )
