"""Pluggable communication backends.

This module is the seam between the SPMD layers of the library
(collectives, gradient exchanges, training, tuning) and the transport
that actually carries the messages.  Everything above this line talks to
two abstractions only:

* a :class:`CommunicatorLike` handle — the MPI-flavoured per-rank API
  (``send`` / ``isend`` / ``recv`` / ``irecv`` / ``probe`` / ``poll`` /
  ``barrier`` / ``dup``) that both transports provide through the shared
  :class:`~repro.comm.communicator.Communicator` class;
* :func:`launch` — the ``mpiexec`` of the library: run an SPMD function
  on ``world_size`` ranks of the chosen backend and collect the per-rank
  results (or a :class:`WorldError` carrying every failure).

Backends register themselves in a name-keyed registry
(:func:`register_backend`); the built-ins are loaded lazily so that
importing :mod:`repro.comm` never pays for a transport it does not use:

``"thread"``
    One Python thread per rank inside this process
    (:class:`repro.comm.world.ThreadBackend`) — fast to spawn, shares
    the GIL, ideal for tests and functional validation.
``"process"``
    One OS process per rank over local TCP sockets
    (:class:`repro.comm.process_backend.ProcessBackend`) — true
    parallelism (no shared GIL), pickled control messages and zero-copy
    framed NumPy payloads.
``"shm"``
    One OS process per rank over shared-memory ring buffers
    (:class:`repro.comm.shm_backend.ShmBackend`) — the same process
    model without the loopback-TCP copies: payloads are written
    directly into per-pair rings.  Platform-gated: on systems without
    POSIX shared memory the name is omitted from
    :func:`available_backends` (see :func:`mark_backend_unavailable`)
    and resolving it raises :class:`BackendUnavailableError`.
``"tcp"``
    The socket mesh with an explicit *seed rendezvous*
    (:class:`repro.comm.tcp_backend.TcpBackend`): ranks meet at a
    caller-provided address (``backend_opts={"seed_addr": ...}`` /
    ``REPRO_SEED_ADDR``), so several launchers — on one machine or
    many — can contribute ranks to a single world.
``"hier"``
    The two-tier composite (:class:`repro.comm.hier_backend.HierBackend`):
    intra-host frames ride shared-memory rings, inter-host frames ride
    sockets, and the endpoint exposes a ``host_topology`` the
    topology-aware collectives query to keep non-leader traffic off the
    slow links.  Gated like ``shm`` (it needs the ring transport).

Adding a transport is registering one subclass::

    from repro.comm.backend import CommBackend, register_backend

    @register_backend("myfabric")
    class MyFabricBackend(CommBackend):
        name = "myfabric"
        def run(self, fn, world_size, args, kwargs, *, channels, channel,
                timeout, default_recv_timeout, **opts):
            ...  # spawn ranks, hand each a Communicator, collect results

after which ``launch(fn, P, backend="myfabric")``, ``TrainingConfig``'s
``comm_backend`` field, ``--backend myfabric`` on the CLI and the tuning
profile cache all pick it up without further changes.

The process-wide default backend is ``"thread"``; it can be overridden
with :func:`set_default_backend` or the ``REPRO_COMM_BACKEND``
environment variable (useful for running an existing benchmark or test
file on another transport without editing it).
"""

from __future__ import annotations

import importlib
import os
from abc import ABC, abstractmethod
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    Type,
    runtime_checkable,
)

from repro.comm.router import Channel, DEFAULT_CHANNELS

#: Environment variable overriding the default backend name.
BACKEND_ENV_VAR = "REPRO_COMM_BACKEND"

#: Fallback default when neither :func:`set_default_backend` nor the
#: environment variable selects one.
FALLBACK_BACKEND = "thread"


class WorldError(RuntimeError):
    """One or more ranks raised an exception during :func:`launch`."""

    def __init__(self, failures: Dict[int, BaseException], tracebacks: Dict[int, str]):
        self.failures = failures
        self.tracebacks = tracebacks
        lines = [f"{len(failures)} rank(s) failed:"]
        for rank in sorted(failures):
            lines.append(f"--- rank {rank}: {failures[rank]!r}")
            lines.append(tracebacks.get(rank, ""))
        super().__init__("\n".join(lines))


class BackendUnavailableError(RuntimeError):
    """The requested backend cannot run on this platform."""


# ---------------------------------------------------------------------------
# protocols
# ---------------------------------------------------------------------------
@runtime_checkable
class RouterLike(Protocol):
    """Transport surface the shared :class:`Communicator` is built on.

    The thread backend's :class:`~repro.comm.router.Router` and the
    process backend's :class:`~repro.comm.process_backend.SocketEndpoint`
    both implement it; a new transport that does gets the whole
    point-to-point API (and every collective layered on it) for free.
    """

    world_size: int

    def mailbox(self, rank: int, channel: str):  # -> Mailbox
        """Mailbox of ``(rank, channel)`` (transports may restrict ``rank``)."""
        ...

    def deliver(self, message, channel: str) -> None:
        """Route one :class:`~repro.comm.message.Message` to its destination."""
        ...

    def close(self) -> None:
        """Tear the transport down, waking any blocked receivers."""
        ...


@runtime_checkable
class CommunicatorLike(Protocol):
    """The per-rank handle every backend hands to the SPMD function."""

    @property
    def rank(self) -> int: ...

    @property
    def size(self) -> int: ...

    @property
    def channel(self) -> str: ...

    def send(self, payload: Any, dest: int, tag: int = 0) -> None: ...

    def isend(self, payload: Any, dest: int, tag: int = 0): ...

    def recv(self, source: int = -1, tag: int = -1, timeout: Optional[float] = None): ...

    def recv_message(self, source: int = -1, tag: int = -1, timeout: Optional[float] = None): ...

    def irecv(self, source: int = -1, tag: int = -1): ...

    def probe(self, source: int = -1, tag: int = -1) -> bool: ...

    def poll(self, source: int = -1, tag: int = -1) -> Optional[Any]: ...

    def barrier(self, timeout: Optional[float] = None) -> None: ...

    def dup(self, channel: Optional[str] = None) -> "CommunicatorLike": ...


# ---------------------------------------------------------------------------
# the backend interface
# ---------------------------------------------------------------------------
class CommBackend(ABC):
    """A transport capable of running an SPMD function on ``P`` ranks.

    Subclasses implement :meth:`run`; everything else (resolution by
    name, CLI flags, config plumbing, profile-cache keys) is inherited
    behaviour of the registry.
    """

    #: Registry key and profile-cache key of this transport.
    name: str = "abstract"

    @abstractmethod
    def run(
        self,
        fn: Callable[..., Any],
        world_size: int,
        args: Tuple[Any, ...] = (),
        kwargs: Optional[Dict[str, Any]] = None,
        *,
        channels: Sequence[str] = DEFAULT_CHANNELS,
        channel: str = Channel.APP,
        timeout: Optional[float] = 300.0,
        default_recv_timeout: Optional[float] = 120.0,
        **opts: Any,
    ) -> List[Any]:
        """Run ``fn(comm, *args, **kwargs)`` on every rank.

        Returns the per-rank results indexed by rank, or raises
        :class:`WorldError` carrying every rank's failure.  ``timeout``
        bounds the whole world; ``default_recv_timeout`` is installed on
        each rank's blocking receives.  Backend-specific options arrive
        via ``opts``.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(name={self.name!r})"


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------
_REGISTRY: Dict[str, CommBackend] = {}

#: Built-in backends, imported on first use so the registry never forces
#: a transport's dependencies on callers that do not select it.
_BUILTIN_MODULES: Dict[str, str] = {
    "thread": "repro.comm.world",
    "process": "repro.comm.process_backend",
    "shm": "repro.comm.shm_backend",
    "tcp": "repro.comm.tcp_backend",
    "hier": "repro.comm.hier_backend",
}

#: Built-ins whose capability probe failed on this platform, with the
#: reason.  Such names are *omitted* from :func:`available_backends`;
#: resolving them raises :class:`BackendUnavailableError` (not the
#: unknown-name :class:`ValueError`) so callers can distinguish a typo
#: from a platform limitation.
_UNAVAILABLE: Dict[str, str] = {}

_default_override: Optional[str] = None


def register_backend(name: str) -> Callable[[Type[CommBackend]], Type[CommBackend]]:
    """Class decorator adding a :class:`CommBackend` to the registry.

    The class is instantiated once; re-registering a name replaces the
    previous instance (latest wins, which keeps reloads idempotent).
    """

    def decorator(cls: Type[CommBackend]) -> Type[CommBackend]:
        instance = cls()
        if not instance.name or instance.name == "abstract":
            instance.name = name
        _REGISTRY[name] = instance
        return cls

    return decorator


def mark_backend_unavailable(name: str, reason: str) -> None:
    """Record that a built-in backend cannot run on this platform.

    Called by a transport module whose import-time capability probe
    failed (e.g. :mod:`repro.comm.shm_backend` on platforms without
    POSIX shared memory) *instead of* registering the backend.  The name
    disappears from :func:`available_backends` and resolving it raises
    :class:`BackendUnavailableError` carrying ``reason``.
    """
    _UNAVAILABLE[name] = reason


def backend_unavailable_reason(name: str) -> Optional[str]:
    """Why ``name`` is unavailable on this platform (``None`` = it isn't)."""
    _load_builtins(name)
    return _UNAVAILABLE.get(name)


def _load_builtins(name: Optional[str] = None) -> None:
    wanted = [name] if name in _BUILTIN_MODULES else list(_BUILTIN_MODULES)
    for key in wanted:
        if key not in _REGISTRY and key not in _UNAVAILABLE:
            importlib.import_module(_BUILTIN_MODULES[key])


def available_backends() -> Tuple[str, ...]:
    """Names of every registered backend (built-ins included).

    Built-ins whose platform probe failed are omitted (the reason is
    logged at import time and queryable via
    :func:`backend_unavailable_reason`).
    """
    _load_builtins()
    return tuple(sorted(_REGISTRY))


def default_backend_name() -> str:
    """The name :func:`launch` uses when no backend is given.

    Resolution order: :func:`set_default_backend` override, then the
    ``REPRO_COMM_BACKEND`` environment variable, then ``"thread"``.
    """
    if _default_override is not None:
        return _default_override
    return os.environ.get(BACKEND_ENV_VAR) or FALLBACK_BACKEND


def set_default_backend(name: Optional[str]) -> None:
    """Override the process-wide default backend (``None`` resets)."""
    global _default_override
    if name is not None:
        get_backend(name)  # fail fast on unknown names
    _default_override = name


def get_backend(backend: Optional[str] = None) -> CommBackend:
    """Resolve a backend by name (``None`` → the process-wide default).

    The returned object is the *live handle*: its ``name`` attribute is
    what keys the tuning profile cache, so a profile calibrated on one
    transport can never be served to another.
    """
    if isinstance(backend, CommBackend):
        return backend
    name = backend or default_backend_name()
    _load_builtins(name)
    try:
        return _REGISTRY[name]
    except KeyError:
        if name in _UNAVAILABLE:
            raise BackendUnavailableError(
                f"comm backend {name!r} is unavailable on this platform: "
                f"{_UNAVAILABLE[name]}"
            ) from None
        raise ValueError(
            f"unknown comm backend {name!r}; available: {list(available_backends())}"
        ) from None


def launch(
    fn: Callable[..., Any],
    world_size: int,
    *args: Any,
    backend: Optional[str] = None,
    channels: Sequence[str] = DEFAULT_CHANNELS,
    channel: str = Channel.APP,
    timeout: Optional[float] = 300.0,
    default_recv_timeout: Optional[float] = 120.0,
    backend_opts: Optional[Dict[str, Any]] = None,
    **kwargs: Any,
) -> List[Any]:
    """Run ``fn(comm, *args, **kwargs)`` on ``world_size`` ranks.

    This is the backend-agnostic successor of the historical
    ``run_world`` entry point (note the argument order: the SPMD
    function comes first, as with ``mpiexec <prog>``).

    Parameters
    ----------
    fn:
        The SPMD function; its first argument is the rank's
        communicator on ``channel``.
    world_size:
        Number of ranks to spawn.
    backend:
        Registered backend name; ``None`` uses the process-wide default
        (``"thread"`` unless overridden, see :func:`set_default_backend`).
    channels:
        Channel names created for every rank.
    timeout:
        Overall completion timeout for the world, in seconds.
    default_recv_timeout:
        Default timeout installed on every rank's blocking receives.
    backend_opts:
        Backend-specific options forwarded to
        :meth:`CommBackend.run` (e.g. ``{"thread_name_prefix": "w"}``
        for the thread backend); every other keyword argument goes to
        ``fn``.

    Returns
    -------
    list
        ``fn``'s return value per rank, indexed by rank.

    Raises
    ------
    WorldError
        If any rank raised; carries per-rank exceptions and tracebacks.
    """
    if world_size < 1:
        raise ValueError(f"world_size must be >= 1, got {world_size}")
    return get_backend(backend).run(
        fn,
        world_size,
        args,
        kwargs,
        channels=channels,
        channel=channel,
        timeout=timeout,
        default_recv_timeout=default_recv_timeout,
        **(backend_opts or {}),
    )
