"""Rank-subset views of a communicator: several SPMD groups, one fabric.

The serving tier co-schedules a *training world* and a *serving pool* on
the same launched world (`python -m repro serve`): ranks ``[0, T)`` run
data-parallel SGD while ranks ``[T, P)`` serve inference traffic.  The
training ranks still want the whole collectives layer — allreduce,
barrier, the fused exchange — but spanning only their subset.

:class:`SubsetCommunicator` provides that: a view over a parent
communicator that renumbers a chosen subset of global ranks as a dense
``[0, size)`` world and translates every source/destination through the
mapping.  The synchronous collectives run on it verbatim because they are
*source-explicit* (every receive names its peer), so two disjoint subsets
can run collectives concurrently on the same channel without stealing
each other's messages: tags may coincide, but the (source, tag) match
never does.

The view deliberately does **not** support wildcard receives
(``source=ANY_SOURCE``): a wildcard could match a message from outside
the subset, silently breaking the group abstraction.  Every layer the
subset view is meant for (the sync collectives, the dissemination
barrier, the serving protocol) names its sources.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from repro.comm.communicator import Communicator
from repro.comm.message import ANY_SOURCE, ANY_TAG, Message
from repro.comm.requests import RecvRequest, Request


class SubsetCommunicator:
    """A dense-rank view over a subset of a parent communicator's world.

    Parameters
    ----------
    parent:
        The full-world communicator of *this* rank.  The parent's global
        rank must be a member of ``ranks``.
    ranks:
        Global ranks of the subset, in the order that defines the view's
        rank numbering (``ranks[i]`` is view rank ``i``).  Must be
        distinct and within the parent world.
    """

    def __init__(self, parent: Communicator, ranks: Sequence[int]) -> None:
        ranks = [int(r) for r in ranks]
        if len(set(ranks)) != len(ranks):
            raise ValueError(f"subset ranks must be distinct, got {ranks}")
        for r in ranks:
            if not 0 <= r < parent.size:
                raise ValueError(
                    f"subset rank {r} outside the parent world [0, {parent.size})"
                )
        if parent.rank not in ranks:
            raise ValueError(
                f"parent rank {parent.rank} is not a member of the subset {ranks}"
            )
        self._parent = parent
        self._ranks: Tuple[int, ...] = tuple(ranks)
        self._index = {g: i for i, g in enumerate(self._ranks)}
        self._rank = self._index[parent.rank]
        self._barrier_epoch = 0

    # -------------------------------------------------------------- meta
    @property
    def rank(self) -> int:
        """This endpoint's rank *within the subset*."""
        return self._rank

    @property
    def size(self) -> int:
        """Number of ranks in the subset."""
        return len(self._ranks)

    @property
    def channel(self) -> str:
        return self._parent.channel

    @property
    def parent(self) -> Communicator:
        """The underlying full-world communicator."""
        return self._parent

    @property
    def global_ranks(self) -> Tuple[int, ...]:
        """Global rank of each view rank, in view-rank order."""
        return self._ranks

    def global_rank(self, view_rank: int) -> int:
        """Translate a view rank to its global rank."""
        return self._ranks[view_rank]

    def dup(self, channel: Optional[str] = None) -> "SubsetCommunicator":
        """The same subset view on another channel of the parent world."""
        return SubsetCommunicator(self._parent.dup(channel), self._ranks)

    # -------------------------------------------------------- translation
    def _to_global(self, view_rank: int, what: str) -> int:
        view_rank = int(view_rank)
        if not 0 <= view_rank < len(self._ranks):
            raise ValueError(
                f"{what} rank {view_rank} outside the subset [0, {len(self._ranks)})"
            )
        return self._ranks[view_rank]

    def _require_member(self, source: int) -> int:
        if source == ANY_SOURCE:
            raise ValueError(
                f"SubsetCommunicator does not support wildcard receives "
                f"(source={source}): a wildcard could match a sender outside "
                f"the subset {self._ranks}; name the source rank explicitly"
            )
        return self._to_global(source, "source")

    # ----------------------------------------------------------------- p2p
    def send(self, payload: Any, dest: int, tag: int = 0) -> None:
        self._parent.send(payload, self._to_global(dest, "dest"), tag=tag)

    def isend(self, payload: Any, dest: int, tag: int = 0) -> Request:
        return self._parent.isend(payload, self._to_global(dest, "dest"), tag=tag)

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        timeout: Optional[float] = None,
    ) -> Any:
        return self.recv_message(source, tag, timeout=timeout).payload

    def recv_message(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        timeout: Optional[float] = None,
    ) -> Message:
        return self._parent.recv_message(
            self._require_member(source), tag, timeout=timeout
        )

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> RecvRequest:
        return self._parent.irecv(self._require_member(source), tag)

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        return self._parent.probe(self._require_member(source), tag)

    def poll(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Optional[Any]:
        return self._parent.poll(self._require_member(source), tag)

    # ------------------------------------------------------------- barrier
    def barrier(self, timeout: Optional[float] = None) -> None:
        """Dissemination barrier over the subset only.

        Same algorithm (and tag layout) as
        :meth:`repro.comm.communicator.Communicator.barrier`, but the
        distance arithmetic runs in view-rank space so only subset members
        participate.  The parent's own barrier epoch is left untouched —
        the two must not share tag slots, so the view keeps its own
        counter and disjoint subsets stay separated by their explicit
        (source, tag) matches.
        """
        from repro.comm import tags

        size = self.size
        epoch = self._barrier_epoch
        self._barrier_epoch += 1
        if size == 1:
            return
        k = 0
        dist = 1
        while dist < size:
            dest = (self._rank + dist) % size
            src = (self._rank - dist) % size
            tag = tags.barrier_tag(epoch, k)
            self.send(("barrier", epoch, k), dest, tag=tag)
            self.recv(source=src, tag=tag, timeout=timeout)
            dist <<= 1
            k += 1

    # ---------------------------------------------------------------- misc
    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"SubsetCommunicator(rank={self._rank}/{self.size}, "
            f"global={self._ranks}, channel={self.channel!r})"
        )


def split_world(
    comm: Communicator, groups: Sequence[Sequence[int]]
) -> List[Optional[SubsetCommunicator]]:
    """Partition a world into disjoint subset views.

    Returns one entry per group: this rank's :class:`SubsetCommunicator`
    for the group it belongs to and ``None`` for the others.  Raises if
    the groups overlap (two groups claiming one rank would both receive
    its traffic) or reference ranks outside the world.
    """
    seen: set = set()
    for group in groups:
        for r in group:
            r = int(r)
            if not 0 <= r < comm.size:
                raise ValueError(f"group rank {r} outside the world [0, {comm.size})")
            if r in seen:
                raise ValueError(f"rank {r} appears in more than one group")
            seen.add(r)
    return [
        SubsetCommunicator(comm, group) if comm.rank in [int(r) for r in group] else None
        for group in groups
    ]
