"""Reduction operators for collective operations.

The operators mirror the MPI predefined reductions used by the paper's
allreduce implementations, plus ``AVG`` which is what distributed SGD
actually needs (line 6 of Algorithm 2 divides the sum by ``P``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from repro.comm import reduce_kernels


@dataclass(frozen=True)
class ReduceOp:
    """A binary, associative, commutative reduction operator.

    Attributes
    ----------
    name:
        Human-readable operator name (``"sum"``, ``"max"``, ...).
    fn:
        Element-wise binary function combining two arrays.
    identity:
        Scalar identity element (used to initialise accumulation buffers
        and as the *null contribution* of absent processes in partial
        collectives).
    ufunc:
        The numpy ufunc implementing ``fn``, when one exists; enables the
        allocation-free in-place combine of :meth:`combine_into` (a
        gradient exchange otherwise allocates a fresh buffer per received
        segment, which dominates large-message latency).
    """

    name: str
    fn: Callable[[np.ndarray, np.ndarray], np.ndarray]
    identity: float
    ufunc: Optional[Callable] = None

    def __reduce__(self):
        """Pickle registered operators by name.

        Operators travel between rank *processes* on the socket transport
        (inside exchange payloads and launcher results), where the
        default dataclass pickling would serialise ``fn`` — impossible
        for closures and fragile across versions.  A registered op
        round-trips to the canonical instance (``loads(dumps(SUM)) is
        SUM``); an unregistered op falls back to field-wise pickling,
        which works exactly when its ``fn``/``ufunc`` are module-level
        callables.
        """
        registered = _REGISTRY.get(self.name)
        if registered is self:
            return (get_op, (self.name,))
        return (ReduceOp, (self.name, self.fn, self.identity, self.ufunc))

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return self.fn(np.asarray(a), np.asarray(b))

    def combine_into(self, out: np.ndarray, other) -> np.ndarray:
        """Combine ``other`` into ``out`` in place: ``out <- fn(out, other)``.

        Bit-identical to ``out[...] = fn(out, other)`` but without the
        intermediate allocation when the operator has a ufunc.  ``out``
        must be a *writable* array and may be a view (e.g. one pipeline
        segment of a fusion buffer).

        Narrow float dtypes dispatch — by dtype, at call time — to the
        vectorised widen-combine-narrow kernels of
        :mod:`repro.comm.reduce_kernels`: NumPy's native ``float16``
        loops convert element-at-a-time, which made reducing fp16
        payloads the slowest step of a narrow-dtype exchange.  The
        kernel result is bit-identical to the native loop.
        """
        if self.ufunc is not None and isinstance(out, np.ndarray):
            if reduce_kernels.combine_into(self.ufunc, out, other):
                return out
            return self.ufunc(out, other, out=out)
        out[...] = self.fn(out, np.asarray(other))
        return out

    def accumulator(self, out: np.ndarray):
        """A widened accumulator over ``out``, or ``None``.

        When ``out`` has a narrow float dtype (and this operator has a
        ufunc), returns a
        :class:`repro.comm.reduce_kernels.WidenedAccumulator` that folds
        many contributions at ``float32`` vector speed and narrows once
        — the multi-segment form of :meth:`combine_into`.  Float32
        accumulation is more accurate than (not bit-identical to)
        stepwise narrow arithmetic, so callers must only use it where no
        bit-agreement contract with stepwise peers exists (e.g. a
        rooted reduction).  ``None`` means combine stepwise.
        """
        return reduce_kernels.accumulator(self.ufunc, out)

    def reduce_many(self, arrays) -> np.ndarray:
        """Reduce an iterable of equally-shaped arrays."""
        arrays = list(arrays)
        if not arrays:
            raise ValueError(f"cannot {self.name}-reduce an empty sequence")
        acc = np.array(arrays[0], dtype=np.float64, copy=True)
        for arr in arrays[1:]:
            acc = self.fn(acc, np.asarray(arr, dtype=np.float64))
        return acc

    def identity_like(self, shape, dtype=np.float64) -> np.ndarray:
        """Return an identity-filled array of the given shape."""
        return np.full(shape, self.identity, dtype=dtype)

    def __repr__(self) -> str:
        return f"ReduceOp({self.name})"


# The combine functions are module-level (not lambdas) so that any
# ReduceOp — registered or custom-but-named — survives a pickle
# round-trip across the process transport.
def _add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return a + b


def _mul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    return a * b


SUM = ReduceOp("sum", _add, 0.0, ufunc=np.add)
PROD = ReduceOp("prod", _mul, 1.0, ufunc=np.multiply)
MAX = ReduceOp("max", np.maximum, -np.inf, ufunc=np.maximum)
MIN = ReduceOp("min", np.minimum, np.inf, ufunc=np.minimum)
#: Average: implemented as SUM at the transport level; callers divide by
#: the number of contributors (or by the world size for eager-SGD, which
#: treats absent contributions as zero — see Algorithm 2, line 6).
AVG = ReduceOp("avg", _add, 0.0, ufunc=np.add)

_REGISTRY: Dict[str, ReduceOp] = {
    "sum": SUM,
    "prod": PROD,
    "max": MAX,
    "min": MIN,
    "avg": AVG,
}


def get_op(op) -> ReduceOp:
    """Resolve an operator given by name or instance."""
    if isinstance(op, ReduceOp):
        return op
    try:
        return _REGISTRY[str(op).lower()]
    except KeyError:
        raise ValueError(
            f"unknown reduce op {op!r}; available: {sorted(_REGISTRY)}"
        ) from None
