"""Multiprocess socket transport: one OS process per rank.

This is the second :class:`~repro.comm.backend.CommBackend` and the
first with true parallelism (no shared GIL), which makes wall-clock
measurements on it comparable to the paper's multi-node runs in kind,
not just in shape.

Topology and rendezvous
-----------------------
The launcher spawns ``P`` rank processes (``fork`` start method by
default, so the SPMD function, closures included, never needs pickling;
``backend_opts={"start_method": "spawn"}`` selects the pickled entry
point instead, for macOS/Windows or CUDA-after-fork situations) and
keeps one control/result pipe pair per rank.  The launcher itself runs
a *rendezvous service* (:class:`_RendezvousService`) on a loopback
address; every rank connects to it, registers its own data-listener
address, and receives the full ``rank -> address`` map back.  Because
the service lives in the launcher, the worker arguments contain no live
sockets — they are pickle-clean, which is what makes both ``spawn`` and
cross-launcher operation (the ``tcp`` backend's seed rendezvous,
:mod:`repro.comm.tcp_backend`) possible with the same worker entry
point.  The data plane is then a full TCP mesh: rank ``i`` dials every
rank ``j > i`` and accepts from every ``j < i``, one socket per pair,
``TCP_NODELAY`` set.  Bring-up connects retry with bounded backoff
(:func:`_connect_with_retry`): a rank may dial a peer whose listener is
not bound yet, and across launchers the seed may come up late — neither
race should abort the world.

Wire format
-----------
Each message is one frame::

    uint32 header_len | pickle(header) | payload bytes

where ``header = (channel, source, dest, tag, seq, kind, dtype, shape,
payload_nbytes)``.  Small Python objects travel pickled (``kind="obj"``).
NumPy arrays travel as their raw buffer (``kind="nd"``): the sender
writes the array's memoryview straight to the socket and the receiver
reads with ``recv_into`` on a preallocated array — no pickling and no
intermediate copies of the payload on either side.

The framing (:func:`pack_frame` / :func:`payload_scratch` /
:func:`payload_finish`) and the endpoint skeleton
(:class:`MeshEndpoint`: per-channel mailboxes with dynamic
sub-channels, delivery bookkeeping, the abort/close state machine) are
shared with the shared-memory transport
(:mod:`repro.comm.shm_backend`), as is the launcher below — only the
byte pipe differs between the two.

Failure semantics
-----------------
Mirrors the thread backend's :class:`~repro.comm.backend.WorldError`
contract.  A rank that raises reports ``(exception, traceback)`` to the
launcher over its result pipe; the launcher then broadcasts an abort on
every control pipe, which closes the surviving ranks' mailboxes — their
blocked receives wake with :class:`~repro.comm.mailbox.MailboxClosed`
instead of hanging.  A rank that dies without reporting (hard crash) is
detected by process exit and triggers the same abort.  A rank that
*finishes* simply closes its transport: peers treat the EOF (or the
ring-closed flag, on the shm transport) as a normal departure, exactly
like a finished thread whose mailbox outlives it.
"""

from __future__ import annotations

import errno
import itertools
import multiprocessing
import multiprocessing.connection
import pickle
import socket
import struct
import threading
import time
import traceback
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.comm.backend import (
    BackendUnavailableError,
    CommBackend,
    WorldError,
    register_backend,
)
from repro.comm.communicator import Communicator
from repro.comm.mailbox import Mailbox, MailboxClosed
from repro.comm.message import Message
from repro.comm.router import Channel, DEFAULT_CHANNELS

__all__ = [
    "MeshEndpoint",
    "ProcessBackend",
    "ProcessCrashError",
    "SocketEndpoint",
    "SocketPeerMixin",
    "pack_frame",
    "payload_finish",
    "payload_scratch",
]

#: Payload kind markers of the wire frame.
_KIND_OBJ = 0
_KIND_ND = 1

_HEADER_LEN = struct.Struct("!I")
_RANK_ID = struct.Struct("!I")

#: Socket timeout applied during rendezvous and mesh establishment.
_SETUP_TIMEOUT = 60.0

#: Backoff schedule of the bring-up retry loops (seconds).
_RETRY_INITIAL_DELAY = 0.02
_RETRY_MAX_DELAY = 0.5

#: Transient bring-up errnos worth retrying: a listener not bound yet
#: (ECONNREFUSED), a backlog overflow (ECONNRESET/ECONNABORTED), a port
#: still in TIME_WAIT (EADDRINUSE) or ephemeral-port pressure
#: (EADDRNOTAVAIL).  Anything else is a real error and propagates.
_RETRYABLE_CONNECT_ERRNOS = frozenset(
    {
        errno.ECONNREFUSED,
        errno.ECONNRESET,
        errno.ECONNABORTED,
        errno.EADDRNOTAVAIL,
        errno.ETIMEDOUT,
        errno.EINTR,
    }
)


class ProcessCrashError(RuntimeError):
    """A rank process exited without reporting a result."""


# ---------------------------------------------------------------------------
# low-level framing helpers (shared with the shm transport)
# ---------------------------------------------------------------------------
def _read_exact_into(sock: socket.socket, view: memoryview) -> bool:
    """Fill ``view`` from the socket; False on EOF before the first byte.

    EOF *inside* a frame (after at least one byte) raises — a peer that
    vanishes mid-message is a crash, not a departure.
    """
    got = 0
    total = len(view)
    while got < total:
        n = sock.recv_into(view[got:], total - got)
        if n == 0:
            if got == 0:
                return False
            raise ConnectionResetError(
                f"peer closed the connection mid-frame ({got}/{total} bytes)"
            )
        got += n
    return True


def _read_exact(sock: socket.socket, nbytes: int) -> Optional[bytearray]:
    buf = bytearray(nbytes)
    if not _read_exact_into(sock, memoryview(buf)):
        return None
    return buf


def _send_obj(sock: socket.socket, obj: Any) -> None:
    data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_HEADER_LEN.pack(len(data)) + data)


def _recv_obj(sock: socket.socket) -> Any:
    header = _read_exact(sock, _HEADER_LEN.size)
    if header is None:
        raise ConnectionResetError("connection closed during rendezvous")
    (length,) = _HEADER_LEN.unpack(header)
    body = _read_exact(sock, length)
    if body is None:
        raise ConnectionResetError("connection closed during rendezvous")
    return pickle.loads(bytes(body))


def _connect_with_retry(
    addr: Tuple[str, int], timeout: float = _SETUP_TIMEOUT, what: str = "peer"
) -> socket.socket:
    """Dial ``addr``, retrying transient bring-up failures with backoff.

    During mesh establishment every connect races the peer's bind: a
    rank may dial a listener that is not up yet (``ECONNREFUSED``), and
    across launchers the seed service may start seconds later.  Those
    races used to abort the whole world; now they retry on a bounded
    exponential backoff until ``timeout`` expires.
    """
    deadline = time.monotonic() + timeout
    delay = _RETRY_INITIAL_DELAY
    last: Optional[OSError] = None
    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            raise TimeoutError(
                f"could not connect to {what} at {addr} within {timeout}s"
                + (f" (last error: {last})" if last is not None else "")
            ) from last
        try:
            return socket.create_connection(addr, timeout=remaining)
        except OSError as exc:
            if (
                exc.errno not in _RETRYABLE_CONNECT_ERRNOS
                and not isinstance(exc, (ConnectionError, socket.timeout))
            ):
                raise
            last = exc
        time.sleep(min(delay, max(0.0, deadline - time.monotonic())))
        delay = min(delay * 2, _RETRY_MAX_DELAY)


def _bind_listener(
    addr: Tuple[str, int], backlog: int, timeout: float = _SETUP_TIMEOUT
) -> socket.socket:
    """Bind a listener at ``addr``, retrying ``EADDRINUSE`` with backoff.

    A fixed seed port may still sit in ``TIME_WAIT`` from the previous
    run (``SO_REUSEADDR`` covers that case directly) or be held for a
    moment by a launcher shutting down; both deserve a bounded wait, not
    an abort.  Ephemeral binds (port 0) never collide and return on the
    first attempt.
    """
    deadline = time.monotonic() + timeout
    delay = _RETRY_INITIAL_DELAY
    while True:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        try:
            sock.bind(addr)
            sock.listen(backlog)
            return sock
        except OSError as exc:
            sock.close()
            if exc.errno != errno.EADDRINUSE or time.monotonic() + delay >= deadline:
                raise
        time.sleep(delay)
        delay = min(delay * 2, _RETRY_MAX_DELAY)


def pack_frame(message: Message, channel: str) -> Tuple[bytes, Any]:
    """``(pickled header, body)`` of one wire frame.

    The header is ``(channel, source, dest, tag, seq, kind, dtype,
    shape, payload_nbytes)``.  NumPy arrays (plain dtypes only) return
    their raw buffer as the body (``kind="nd"`` — written to the wire
    without pickling); everything else is pickled (``kind="obj"``).
    """
    payload = message.payload
    if (
        isinstance(payload, np.ndarray)
        and not payload.dtype.hasobject
        and payload.dtype.names is None  # dtype.str drops record fields
    ):
        # ascontiguousarray would promote 0-d to 1-d; the header keeps
        # the true shape so the receiver reconstructs it exactly.
        arr = payload if payload.flags.c_contiguous else np.ascontiguousarray(payload)
        header = (
            channel, message.source, message.dest, message.tag, message.seq,
            _KIND_ND, arr.dtype.str, payload.shape, int(arr.nbytes),
        )
        body: Any = memoryview(arr.reshape(-1)).cast("B")
    else:
        body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        header = (
            channel, message.source, message.dest, message.tag, message.seq,
            _KIND_OBJ, "", (), len(body),
        )
    return pickle.dumps(header, protocol=pickle.HIGHEST_PROTOCOL), body


def payload_scratch(kind: int, dtype: str, nbytes: int) -> Tuple[Any, memoryview]:
    """Receive-side buffer for one frame's payload.

    Returns ``(scratch, byte view)``: the transport fills the view with
    the frame's payload bytes (zero-copy for arrays — the view aliases
    the array's own buffer) and hands the scratch to
    :func:`payload_finish`.
    """
    if kind == _KIND_ND:
        dt = np.dtype(dtype)
        flat = np.empty(nbytes // dt.itemsize if dt.itemsize else 0, dtype=dt)
        return flat, memoryview(flat.view(np.uint8)) if nbytes else memoryview(b"")
    buf = bytearray(nbytes)
    return buf, memoryview(buf)


def payload_finish(kind: int, shape: Tuple[int, ...], scratch: Any) -> Any:
    """Turn a filled :func:`payload_scratch` buffer into the payload."""
    if kind == _KIND_ND:
        return scratch.reshape(shape)
    return pickle.loads(bytes(scratch))


# ---------------------------------------------------------------------------
# the shared per-process endpoint skeleton
# ---------------------------------------------------------------------------
class MeshEndpoint:
    """One rank's view of a multiprocess mesh (transport-agnostic half).

    Implements the :class:`~repro.comm.backend.RouterLike` surface the
    shared :class:`~repro.comm.communicator.Communicator` is built on:
    local mailboxes per channel (dynamic ``"<base>.<suffix>"``
    sub-channels included, mirroring
    :meth:`repro.comm.router.Router.mailbox`), delivery bookkeeping, and
    the abort/close state machine every multiprocess transport shares.
    Subclasses implement :meth:`_send_frame` (write one frame to the
    peer's byte pipe) and the :meth:`_shutdown_transport` /
    :meth:`_join_receivers` teardown hooks.
    """

    #: Remote payloads are framed (copied onto the wire) synchronously
    #: inside :meth:`deliver`, so the communicator may skip its
    #: defensive pre-send copy for remote destinations.
    remote_payloads_framed = True

    def __init__(
        self, rank: int, world_size: int, channels: Sequence[str] = DEFAULT_CHANNELS
    ) -> None:
        if world_size < 1:
            raise ValueError(f"world_size must be >= 1, got {world_size}")
        self.rank = int(rank)
        self.world_size = int(world_size)
        self.channels: Tuple[str, ...] = tuple(channels)
        if not self.channels:
            raise ValueError(f"at least one channel is required, got {channels!r}")
        self._mailboxes: Dict[str, Mailbox] = {
            ch: self._make_mailbox(self.rank, ch) for ch in self.channels
        }
        self._departed: set[int] = set()
        self._seq = itertools.count()
        self._lock = threading.Lock()
        self._message_count = 0
        self._byte_count = 0
        self._closed = False
        self._abort_reason: Optional[str] = None

    # ----------------------------------------------------------- plumbing
    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.world_size:
            raise ValueError(
                f"rank {rank} out of range for world of size {self.world_size}"
            )

    def _make_mailbox(self, rank: int, channel: str) -> Mailbox:
        """Mailbox factory hook.

        The shm transport returns work-stealing mailboxes whose blocked
        receivers pump the rings themselves; the socket transport uses
        the plain kind (its receiver threads already block in the
        kernel, which is as direct as a socket wake-up gets).
        """
        return Mailbox(rank, channel)

    # ------------------------------------------------------------- access
    def mailbox(self, rank: int, channel: str) -> Mailbox:
        """Local mailbox for ``(rank, channel)``; only this rank's are held here."""
        self._check_rank(rank)
        if rank != self.rank:
            raise ValueError(
                f"rank {self.rank} cannot open rank {rank}'s mailbox: a "
                "multiprocess transport only holds local mailboxes"
            )
        mailbox = self._mailboxes.get(channel)
        if mailbox is None:
            base = channel.split(".", 1)[0]
            with self._lock:
                mailbox = self._mailboxes.get(channel)
                if mailbox is None:
                    if base == channel or base not in self.channels:
                        raise KeyError(
                            f"unknown channel {channel!r}; available: "
                            f"{self.channels} (plus '<known>.<suffix>' "
                            f"dynamic sub-channels)"
                        )
                    mailbox = self._make_mailbox(self.rank, channel)
                    if self._closed:
                        # Born closed, mirroring Router.close() semantics:
                        # a straggler blocked on a late-created channel is
                        # woken instead of hanging until its timeout.
                        mailbox.close()
                    self._mailboxes[channel] = mailbox
                    self.channels = self.channels + (channel,)
        return mailbox

    # ------------------------------------------------------------ deliver
    def deliver(self, message: Message, channel: str) -> None:
        """Route ``message`` to its destination (local put or wire frame)."""
        self._check_rank(message.dest)
        self._check_rank(message.source)
        base = channel.split(".", 1)[0]
        if channel not in self.channels and (base == channel or base not in self.channels):
            raise KeyError(
                f"unknown channel {channel!r}; available: {self.channels} "
                f"(plus '<known>.<suffix>' dynamic sub-channels)"
            )
        if self._closed:
            raise MailboxClosed(
                f"rank {self.rank}: endpoint is closed"
                + (f" ({self._abort_reason})" if self._abort_reason else "")
            )
        message.seq = next(self._seq)
        with self._lock:
            self._message_count += 1
            self._byte_count += message.nbytes()
        if message.dest == self.rank:
            self.mailbox(self.rank, channel).put(message)
            return
        if message.dest in self._departed:
            # The peer already finished and tore its transport down; like
            # a thread world's mailbox-to-nobody, the send just evaporates.
            return
        self._send_frame(message, channel)

    def _send_frame(self, message: Message, channel: str) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------- stats
    @property
    def message_count(self) -> int:
        """Messages this endpoint has delivered (sent) so far."""
        with self._lock:
            return self._message_count

    @property
    def byte_count(self) -> int:
        """Array payload bytes this endpoint has delivered (sent) so far."""
        with self._lock:
            return self._byte_count

    def pending_messages(self) -> int:
        """Delivered-but-unreceived messages across this rank's mailboxes."""
        with self._lock:
            mailboxes = list(self._mailboxes.values())
        return sum(mb.pending() for mb in mailboxes)

    # -------------------------------------------------------------- close
    def abort(self, reason: str) -> None:
        """Wake every blocked receive on this rank (world failure path)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._abort_reason = reason
            mailboxes = list(self._mailboxes.values())
        for mb in mailboxes:
            mb.close()
        self._shutdown_transport()

    def close(self) -> None:
        """Orderly teardown after the SPMD function returned.

        Mailboxes stay readable (matching a finished thread rank whose
        queued messages remain inspectable); only the transport goes
        down, which peers observe as a normal departure.  Safe after an
        abort: the transport is already down, but receiver threads are
        still joined (and transport mappings released) exactly once.
        """
        with self._lock:
            already_closed = self._closed
            self._closed = True
        if not already_closed:
            self._shutdown_transport()
        self._join_receivers()

    def _shutdown_transport(self) -> None:
        raise NotImplementedError

    def _join_receivers(self) -> None:
        """Wait briefly for receiver threads after an orderly close."""


# ---------------------------------------------------------------------------
# the socket endpoint
# ---------------------------------------------------------------------------
class SocketPeerMixin:
    """Per-peer socket machinery shared by the flat TCP mesh and the
    hierarchical endpoint's inter-host links.

    Mixed into a :class:`MeshEndpoint` subclass; uses its ``rank``,
    ``mailbox``, ``abort`` and ``_departed`` surfaces.  Attribute names
    are ``_sock``-prefixed so the shm ring state of a composite endpoint
    (:mod:`repro.comm.hier_backend`) never collides with them.
    """

    def _init_socket_peers(self) -> None:
        self._sock_peers: Dict[int, socket.socket] = {}
        self._sock_send_locks: Dict[int, threading.Lock] = {}
        self._sock_receivers: List[threading.Thread] = []

    def _notify_socket_delivery(self) -> None:
        """Hook run after a socket frame lands in a mailbox.

        The plain socket endpoint needs nothing (its receivers block in
        the kernel and ``put`` notifies the mailbox condition); the
        composite endpoint rings its shm doorbell here so a consumer
        parked on ring starvation wakes for socket arrivals too.
        """

    # ----------------------------------------------------------- plumbing
    def attach_peer(self, peer: int, sock: socket.socket) -> None:
        """Register the mesh socket for ``peer`` and start its receiver."""
        sock.settimeout(None)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._sock_peers[peer] = sock
        self._sock_send_locks[peer] = threading.Lock()
        thread = threading.Thread(
            target=self._recv_loop,
            args=(peer, sock),
            name=f"sockrecv-r{self.rank}-p{peer}",
            daemon=True,
        )
        self._sock_receivers.append(thread)
        thread.start()

    # --------------------------------------------------------------- send
    def _send_socket_frame(self, message: Message, channel: str) -> None:
        dest = message.dest
        sock = self._sock_peers.get(dest)
        if sock is None:
            return
        head, body = pack_frame(message, channel)
        lock = self._sock_send_locks[dest]
        try:
            with lock:
                sock.sendall(_HEADER_LEN.pack(len(head)) + head)
                if len(body):
                    sock.sendall(body)
        except OSError:
            # EPIPE/ECONNRESET: the peer departed between our check and the
            # write.  Same no-op semantics as a departed peer; a *crash* is
            # handled by the launcher's abort broadcast, not the send path.
            self._departed.add(dest)

    # ----------------------------------------------------------- receive
    def _recv_loop(self, peer: int, sock: socket.socket) -> None:
        try:
            while True:
                head_len_buf = _read_exact(sock, _HEADER_LEN.size)
                if head_len_buf is None:
                    break  # orderly EOF at a frame boundary: peer departed
                (head_len,) = _HEADER_LEN.unpack(head_len_buf)
                head = _read_exact(sock, head_len)
                if head is None:
                    raise ConnectionResetError("EOF inside a frame header")
                channel, source, dest, tag, seq, kind, dtype, shape, nbytes = (
                    pickle.loads(bytes(head))
                )
                scratch, view = payload_scratch(kind, dtype, nbytes)
                if nbytes:
                    # Zero-copy receive: the socket fills the array's
                    # own buffer, no intermediate bytes object.
                    if not _read_exact_into(sock, view):
                        raise ConnectionResetError("EOF inside a frame payload")
                payload = payload_finish(kind, shape, scratch)
                msg = Message(source=source, dest=dest, tag=tag, payload=payload, seq=seq)
                try:
                    self.mailbox(self.rank, channel).put(msg)
                except MailboxClosed:
                    return  # aborted while delivering; drop and exit
                self._notify_socket_delivery()
        except OSError:
            # Reset/teardown on the peer socket (including mid-frame EOF,
            # which _read_exact_into raises as ConnectionResetError).  A
            # peer may answer its own close() with RST while our frame is
            # in flight, so a socket error here is *departure*, never a
            # world failure: genuine crashes are detected by the
            # launcher's liveness check, which aborts every rank through
            # the control pipes.  Mirrors the send path's handling.
            pass
        except (EOFError, pickle.UnpicklingError) as exc:
            # Both processes are alive but the stream is unreadable — the
            # launcher cannot see this, so wake the local rank ourselves.
            if not self._closed:
                self.abort(f"corrupted stream from rank {peer}: {exc}")
        finally:
            self._departed.add(peer)
            try:
                sock.close()
            except OSError:
                pass

    # -------------------------------------------------------------- close
    def _shutdown_socket_peers(self) -> None:
        for sock in self._sock_peers.values():
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass

    def _join_socket_receivers(self) -> None:
        for thread in self._sock_receivers:
            thread.join(timeout=2.0)


class SocketEndpoint(SocketPeerMixin, MeshEndpoint):
    """One rank's view of the TCP socket mesh."""

    def __init__(
        self, rank: int, world_size: int, channels: Sequence[str] = DEFAULT_CHANNELS
    ) -> None:
        super().__init__(rank, world_size, channels)
        self._init_socket_peers()

    def _send_frame(self, message: Message, channel: str) -> None:
        self._send_socket_frame(message, channel)

    def _shutdown_transport(self) -> None:
        self._shutdown_socket_peers()

    def _join_receivers(self) -> None:
        self._join_socket_receivers()


# ---------------------------------------------------------------------------
# rendezvous service (launcher side) + mesh establishment (rank side)
# ---------------------------------------------------------------------------
class _RendezvousService:
    """Launcher-side seed server: collect every rank's payload, broadcast
    the map.

    Serving the rendezvous from the launcher (instead of a fork-inherited
    listener inside rank 0) keeps the worker arguments free of live
    sockets — pickle-clean, so the ``spawn`` start method and the ``tcp``
    backend's cross-launcher seed use the same worker entry point.  For
    multi-launcher worlds only the launcher owning the seed address runs
    a service; every rank of every launcher connects to it as a client.
    """

    def __init__(
        self, world_size: int, addr: Tuple[str, int] = ("127.0.0.1", 0)
    ) -> None:
        self._world_size = world_size
        self._listener = _bind_listener(addr, backlog=world_size)
        #: The address ranks dial (concrete port even for ephemeral binds).
        self.addr: Tuple[str, int] = self._listener.getsockname()[:2]
        self._thread = threading.Thread(
            target=self._serve, name="rendezvous-seed", daemon=True
        )
        self._thread.start()

    def _serve(self) -> None:
        listener = self._listener
        listener.settimeout(_SETUP_TIMEOUT)
        payload_map: Dict[int, Any] = {}
        conns: List[socket.socket] = []
        try:
            while len(conns) < self._world_size:
                conn, _ = listener.accept()
                conn.settimeout(_SETUP_TIMEOUT)
                peer_rank, peer_payload = _recv_obj(conn)
                payload_map[int(peer_rank)] = peer_payload
                conns.append(conn)
            for conn in conns:
                _send_obj(conn, payload_map)
        except OSError:
            # Listener closed during teardown, or the accept timed out
            # because some rank never dialled in; the ranks observe their
            # own rendezvous failures and report through the launcher.
            pass
        finally:
            for conn in conns:
                try:
                    conn.close()
                except OSError:
                    pass

    def close(self) -> None:
        try:
            self._listener.close()
        except OSError:  # pragma: no cover - already closed
            pass
        self._thread.join(timeout=1.0)


def _rendezvous(
    rank: int,
    world_size: int,
    rendezvous_addr: Tuple[str, int],
    my_payload: Any,
) -> Dict[int, Any]:
    """Register with the seed service, receive the full payload map back.

    Used by the socket mesh (payloads are data-listener addresses) and
    as the setup barrier of the shm mesh (payloads are readiness
    markers, the broadcast doubles as the "all segments exist" signal).
    The dial retries: across launchers the seed may not be bound yet.
    """
    conn = _connect_with_retry(rendezvous_addr, _SETUP_TIMEOUT, what="rendezvous seed")
    conn.settimeout(_SETUP_TIMEOUT)
    try:
        _send_obj(conn, (rank, my_payload))
        payload_map = _recv_obj(conn)
    finally:
        conn.close()
    if len(payload_map) != world_size:
        raise RuntimeError(
            f"rendezvous returned {len(payload_map)} registrations for a "
            f"world of {world_size}"
        )
    return payload_map


def _build_mesh(
    rank: int,
    world_size: int,
    channels: Sequence[str],
    rendezvous_addr: Tuple[str, int],
    bind_host: str = "127.0.0.1",
) -> SocketEndpoint:
    endpoint = SocketEndpoint(rank, world_size, channels)
    if world_size == 1:
        return endpoint

    data_listener = _bind_listener((bind_host, 0), backlog=world_size)
    data_listener.settimeout(_SETUP_TIMEOUT)
    my_addr = data_listener.getsockname()[:2]

    # --- seed rendezvous: register, receive the full address map --------
    addr_map = _rendezvous(rank, world_size, rendezvous_addr, my_addr)

    # --- full mesh: dial the higher ranks, accept the lower ones --------
    for peer in range(rank + 1, world_size):
        sock = _connect_with_retry(
            tuple(addr_map[peer]), _SETUP_TIMEOUT, what=f"rank {peer}"
        )
        sock.sendall(_RANK_ID.pack(rank))
        endpoint.attach_peer(peer, sock)
    for _ in range(rank):
        sock, _ = data_listener.accept()
        sock.settimeout(_SETUP_TIMEOUT)
        raw = _read_exact(sock, _RANK_ID.size)
        if raw is None:
            raise ConnectionResetError("mesh peer closed during handshake")
        (peer,) = _RANK_ID.unpack(raw)
        endpoint.attach_peer(int(peer), sock)
    data_listener.close()
    return endpoint


# ---------------------------------------------------------------------------
# rank worker (child process)
# ---------------------------------------------------------------------------
def _pickle_safe_exception(exc: BaseException) -> BaseException:
    """Return ``exc`` if it survives a pickle round-trip, else a stand-in."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:  # noqa: BLE001 - any pickling failure takes the fallback
        return RuntimeError(f"{type(exc).__name__}: {exc}")


def _abort_listener(control, endpoint: MeshEndpoint, done: threading.Event) -> None:
    while not done.is_set():
        try:
            if control.poll(0.1):
                control.recv()
                endpoint.abort("aborted by launcher: another rank failed")
                return
        except (EOFError, OSError):
            return


def _worker_main(
    rank: int,
    world_size: int,
    fn: Callable[..., Any],
    args: Tuple[Any, ...],
    kwargs: Dict[str, Any],
    mesh_builder: Callable[..., MeshEndpoint],
    mesh_args: Tuple[Any, ...],
    channels: Sequence[str],
    channel: str,
    default_recv_timeout: Optional[float],
    result_conn,
    control_conn,
) -> None:
    endpoint: Optional[MeshEndpoint] = None
    done = threading.Event()
    try:
        endpoint = mesh_builder(rank, world_size, channels, *mesh_args)
        listener = threading.Thread(
            target=_abort_listener,
            args=(control_conn, endpoint, done),
            name=f"abort-listener-r{rank}",
            daemon=True,
        )
        listener.start()
        comm = Communicator(
            endpoint, rank, channel=channel, default_timeout=default_recv_timeout
        )
        result = fn(comm, *args, **kwargs)
        try:
            result_conn.send(("ok", result))
        except Exception as exc:  # noqa: BLE001 - unpicklable result
            result_conn.send(
                (
                    "err",
                    RuntimeError(
                        f"rank {rank} returned an unpicklable result "
                        f"({type(result).__name__}): {exc}"
                    ),
                    traceback.format_exc(),
                )
            )
    except BaseException as exc:  # noqa: BLE001 - reported to the launcher
        try:
            result_conn.send(("err", _pickle_safe_exception(exc), traceback.format_exc()))
        except (OSError, ValueError, EOFError):
            pass
    finally:
        done.set()
        if endpoint is not None:
            endpoint.close()
        try:
            result_conn.close()
        except OSError:
            pass


# ---------------------------------------------------------------------------
# the backend (launcher side)
# ---------------------------------------------------------------------------
@register_backend("process")
class ProcessBackend(CommBackend):
    """One OS process per rank over a local TCP socket mesh.

    The launcher below — spawn, result collection, liveness checks, the
    abort broadcast, the hang/timeout handling — is transport-agnostic;
    the shm backend (:mod:`repro.comm.shm_backend`) subclasses this
    class and overrides only the ``_setup_world`` / ``_mesh_args`` /
    ``_cleanup_world`` hooks that describe the byte pipe.
    """

    name = "process"

    #: Grace period for surviving ranks to drain after an abort broadcast.
    abort_grace: float = 10.0

    #: Start methods tried (in order) when the caller does not pick one.
    _START_METHOD_PREFERENCE: Tuple[str, ...] = ("fork", "spawn")

    def _context(self, start_method: Optional[str] = None):
        if start_method is not None:
            try:
                return multiprocessing.get_context(start_method)
            except ValueError as exc:
                raise ValueError(
                    f"unknown multiprocessing start method {start_method!r}; "
                    f"available: {multiprocessing.get_all_start_methods()}"
                ) from exc
        for method in self._START_METHOD_PREFERENCE:
            try:
                return multiprocessing.get_context(method)
            except ValueError:  # pragma: no cover - non-POSIX platforms
                continue
        raise BackendUnavailableError(  # pragma: no cover - spawn always exists
            f"the {self.name} backend found no usable start method; "
            "use backend='thread' on this platform"
        )

    # ------------------------------------------------------ transport hooks
    def _reject_unknown_opts(self, opts: Dict[str, Any]) -> None:
        if opts:
            raise TypeError(
                f"{self.name} backend got unexpected options {sorted(opts)}"
            )

    def _setup_world(self, ctx, world_size: int, opts: Dict[str, Any]) -> Dict[str, Any]:
        """Allocate launcher-side transport state.

        Everything handed to the workers afterwards (via
        :meth:`_mesh_args`) must be picklable: the rendezvous runs as a
        launcher-side service, so the workers only ever see its address.
        """
        self._reject_unknown_opts(opts)
        if world_size == 1:
            return {"service": None, "addr": None}
        service = _RendezvousService(world_size)
        return {"service": service, "addr": service.addr}

    def _mesh_builder(self) -> Callable[..., MeshEndpoint]:
        return _build_mesh

    def _mesh_args(self, setup: Dict[str, Any], rank: int) -> Tuple[Any, ...]:
        return (setup["addr"],)

    def _post_spawn(self, setup: Dict[str, Any]) -> None:
        """Release launcher copies of resources the children inherited."""

    def _cleanup_world(self, setup: Dict[str, Any]) -> None:
        """Tear down launcher-side transport state after the world ended."""
        service = setup.get("service")
        if service is not None:
            service.close()

    # -------------------------------------------------------------- launch
    def run(
        self,
        fn: Callable[..., Any],
        world_size: int,
        args: Tuple[Any, ...] = (),
        kwargs: Optional[Dict[str, Any]] = None,
        *,
        channels: Sequence[str] = DEFAULT_CHANNELS,
        channel: str = Channel.APP,
        timeout: Optional[float] = 300.0,
        default_recv_timeout: Optional[float] = 120.0,
        **opts: Any,
    ) -> List[Any]:
        kwargs = kwargs or {}
        start_method = opts.pop("start_method", None)
        ctx = self._context(start_method)
        setup = self._setup_world(ctx, world_size, opts)
        # A launcher may own only a subset of the ranks (the tcp backend's
        # multi-launcher mode); by default it spawns and monitors them all.
        local_ranks = list(setup.get("local_ranks") or range(world_size))
        try:
            result_pipes = {rank: ctx.Pipe(duplex=False) for rank in local_ranks}
            control_pipes = {rank: ctx.Pipe(duplex=False) for rank in local_ranks}
            procs: Dict[int, Any] = {}
            mesh_builder = self._mesh_builder()
            for rank in local_ranks:
                proc = ctx.Process(
                    target=_worker_main,
                    args=(
                        rank,
                        world_size,
                        fn,
                        args,
                        kwargs,
                        mesh_builder,
                        self._mesh_args(setup, rank),
                        tuple(channels),
                        channel,
                        default_recv_timeout,
                        result_pipes[rank][1],
                        control_pipes[rank][0],
                    ),
                    name=f"rank{rank}",
                    daemon=True,
                )
                procs[rank] = proc
                proc.start()
            # The children hold their ends now; release the parent's copies.
            self._post_spawn(setup)
            for recv_end, send_end in result_pipes.values():
                send_end.close()
            for recv_end, send_end in control_pipes.values():
                recv_end.close()
            return self._monitor(procs, result_pipes, control_pipes, world_size, timeout)
        finally:
            self._cleanup_world(setup)

    # ------------------------------------------------------------- monitor
    def _monitor(
        self,
        procs: Dict[int, Any],
        result_pipes: Dict[int, Any],
        control_pipes: Dict[int, Any],
        world_size: int,
        timeout: Optional[float],
    ) -> List[Any]:
        """Collect results from this launcher's ranks (keys of ``procs``).

        Returns a list indexed by *global* rank; positions owned by
        another launcher stay ``None``.  Failure semantics are per
        launcher: each launcher aborts and reports its own ranks, a
        remote launcher's crash surfaces here as peer departures (or a
        timeout) on the local ranks.
        """
        results: List[Any] = [None] * world_size
        reported: Dict[int, bool] = {}
        failures: Dict[int, BaseException] = {}
        tracebacks: Dict[int, str] = {}
        aborted = False

        def _broadcast_abort() -> None:
            nonlocal aborted
            if aborted:
                return
            aborted = True
            for rank in procs:
                if rank not in reported:
                    try:
                        control_pipes[rank][1].send("abort")
                    except (OSError, ValueError, BrokenPipeError):
                        pass

        def _drain(rank: int) -> None:
            conn = result_pipes[rank][0]
            try:
                if conn.poll(0):
                    outcome = conn.recv()
                    reported[rank] = True
                    if outcome[0] == "ok":
                        results[rank] = outcome[1]
                    else:
                        failures[rank] = outcome[1]
                        tracebacks[rank] = outcome[2]
            except (EOFError, OSError):
                pass  # handled by the liveness check below

        deadline = None if timeout is None else time.monotonic() + timeout
        grace_deadline: Optional[float] = None
        timed_out = False
        while len(reported) < len(procs):
            for rank in procs:
                if rank not in reported:
                    _drain(rank)
            for rank, proc in procs.items():
                if rank not in reported and not proc.is_alive():
                    _drain(rank)  # result may have raced the exit
                    if rank not in reported:
                        reported[rank] = True
                        failures[rank] = ProcessCrashError(
                            f"rank {rank} exited with code {proc.exitcode} "
                            "without reporting a result"
                        )
                        tracebacks[rank] = ""
            if failures:
                _broadcast_abort()
                if grace_deadline is None:
                    grace_deadline = time.monotonic() + self.abort_grace
            if len(reported) >= len(procs):
                break
            now = time.monotonic()
            if grace_deadline is not None and now >= grace_deadline:
                break
            if deadline is not None and now >= deadline:
                timed_out = True
                _broadcast_abort()
                # Short grace only: a rank blocked in communication wakes
                # on the abort, one stuck in compute needs terminate().
                grace_deadline = now + min(2.0, self.abort_grace)
                deadline = None
            # Block until a result arrives or a child exits — no busy
            # polling.  A drained-but-alive rank's pipe never re-signals,
            # so only unreported ranks' handles are waited on.
            pending = [r for r in procs if r not in reported]
            handles: List[Any] = [result_pipes[r][0] for r in pending]
            handles += [procs[r].sentinel for r in pending]
            wait_bounds = [
                b - time.monotonic()
                for b in (deadline, grace_deadline)
                if b is not None
            ]
            multiprocessing.connection.wait(
                handles, timeout=max(0.0, min(wait_bounds)) if wait_bounds else None
            )

        hung = []
        for rank, proc in procs.items():
            proc.join(timeout=0.5)
            if proc.is_alive():
                hung.append(proc.name)
                proc.terminate()
                proc.join(timeout=2.0)
                if proc.is_alive():  # pragma: no cover - terminate() sufficed so far
                    proc.kill()
                    proc.join(timeout=1.0)
        for rank in procs:
            for conn in (result_pipes[rank][0], control_pipes[rank][1]):
                try:
                    conn.close()
                except OSError:
                    pass

        if (timed_out or hung) and not failures:
            raise WorldError(
                {-1: TimeoutError(f"ranks did not finish within {timeout}s: {hung}")},
                {-1: ""},
            )
        if failures:
            raise WorldError(failures, tracebacks)
        return results
