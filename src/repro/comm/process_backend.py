"""Multiprocess socket transport: one OS process per rank.

This is the second :class:`~repro.comm.backend.CommBackend` and the
first with true parallelism (no shared GIL), which makes wall-clock
measurements on it comparable to the paper's multi-node runs in kind,
not just in shape.

Topology and rendezvous
-----------------------
The launcher forks ``P`` rank processes (``fork`` start method, so the
SPMD function, closures included, never needs pickling) and keeps one
control/result pipe pair per rank.  Rank 0 inherits a pre-bound
rendezvous listener on ``127.0.0.1``; every other rank connects to it,
registers its own data-listener address, and receives the full
``rank -> address`` map back.  The data plane is then a full TCP mesh:
rank ``i`` dials every rank ``j > i`` and accepts from every ``j < i``,
one socket per pair, ``TCP_NODELAY`` set.

Wire format
-----------
Each message is one frame::

    uint32 header_len | pickle(header) | payload bytes

where ``header = (channel, source, dest, tag, seq, kind, dtype, shape,
payload_nbytes)``.  Small Python objects travel pickled (``kind="obj"``).
NumPy arrays travel as their raw buffer (``kind="nd"``): the sender
writes the array's memoryview straight to the socket and the receiver
reads with ``recv_into`` on a preallocated array — no pickling and no
intermediate copies of the payload on either side.

The framing (:func:`pack_frame` / :func:`payload_scratch` /
:func:`payload_finish`) and the endpoint skeleton
(:class:`MeshEndpoint`: per-channel mailboxes with dynamic
sub-channels, delivery bookkeeping, the abort/close state machine) are
shared with the shared-memory transport
(:mod:`repro.comm.shm_backend`), as is the launcher below — only the
byte pipe differs between the two.

Failure semantics
-----------------
Mirrors the thread backend's :class:`~repro.comm.backend.WorldError`
contract.  A rank that raises reports ``(exception, traceback)`` to the
launcher over its result pipe; the launcher then broadcasts an abort on
every control pipe, which closes the surviving ranks' mailboxes — their
blocked receives wake with :class:`~repro.comm.mailbox.MailboxClosed`
instead of hanging.  A rank that dies without reporting (hard crash) is
detected by process exit and triggers the same abort.  A rank that
*finishes* simply closes its transport: peers treat the EOF (or the
ring-closed flag, on the shm transport) as a normal departure, exactly
like a finished thread whose mailbox outlives it.
"""

from __future__ import annotations

import itertools
import multiprocessing
import multiprocessing.connection
import pickle
import socket
import struct
import threading
import time
import traceback
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.comm.backend import (
    BackendUnavailableError,
    CommBackend,
    WorldError,
    register_backend,
)
from repro.comm.communicator import Communicator
from repro.comm.mailbox import Mailbox, MailboxClosed
from repro.comm.message import Message
from repro.comm.router import Channel, DEFAULT_CHANNELS

__all__ = [
    "MeshEndpoint",
    "ProcessBackend",
    "ProcessCrashError",
    "SocketEndpoint",
    "pack_frame",
    "payload_finish",
    "payload_scratch",
]

#: Payload kind markers of the wire frame.
_KIND_OBJ = 0
_KIND_ND = 1

_HEADER_LEN = struct.Struct("!I")
_RANK_ID = struct.Struct("!I")

#: Socket timeout applied during rendezvous and mesh establishment.
_SETUP_TIMEOUT = 60.0


class ProcessCrashError(RuntimeError):
    """A rank process exited without reporting a result."""


# ---------------------------------------------------------------------------
# low-level framing helpers (shared with the shm transport)
# ---------------------------------------------------------------------------
def _read_exact_into(sock: socket.socket, view: memoryview) -> bool:
    """Fill ``view`` from the socket; False on EOF before the first byte.

    EOF *inside* a frame (after at least one byte) raises — a peer that
    vanishes mid-message is a crash, not a departure.
    """
    got = 0
    total = len(view)
    while got < total:
        n = sock.recv_into(view[got:], total - got)
        if n == 0:
            if got == 0:
                return False
            raise ConnectionResetError(
                f"peer closed the connection mid-frame ({got}/{total} bytes)"
            )
        got += n
    return True


def _read_exact(sock: socket.socket, nbytes: int) -> Optional[bytearray]:
    buf = bytearray(nbytes)
    if not _read_exact_into(sock, memoryview(buf)):
        return None
    return buf


def _send_obj(sock: socket.socket, obj: Any) -> None:
    data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_HEADER_LEN.pack(len(data)) + data)


def _recv_obj(sock: socket.socket) -> Any:
    header = _read_exact(sock, _HEADER_LEN.size)
    if header is None:
        raise ConnectionResetError("connection closed during rendezvous")
    (length,) = _HEADER_LEN.unpack(header)
    body = _read_exact(sock, length)
    if body is None:
        raise ConnectionResetError("connection closed during rendezvous")
    return pickle.loads(bytes(body))


def pack_frame(message: Message, channel: str) -> Tuple[bytes, Any]:
    """``(pickled header, body)`` of one wire frame.

    The header is ``(channel, source, dest, tag, seq, kind, dtype,
    shape, payload_nbytes)``.  NumPy arrays (plain dtypes only) return
    their raw buffer as the body (``kind="nd"`` — written to the wire
    without pickling); everything else is pickled (``kind="obj"``).
    """
    payload = message.payload
    if (
        isinstance(payload, np.ndarray)
        and not payload.dtype.hasobject
        and payload.dtype.names is None  # dtype.str drops record fields
    ):
        # ascontiguousarray would promote 0-d to 1-d; the header keeps
        # the true shape so the receiver reconstructs it exactly.
        arr = payload if payload.flags.c_contiguous else np.ascontiguousarray(payload)
        header = (
            channel, message.source, message.dest, message.tag, message.seq,
            _KIND_ND, arr.dtype.str, payload.shape, int(arr.nbytes),
        )
        body: Any = memoryview(arr.reshape(-1)).cast("B")
    else:
        body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        header = (
            channel, message.source, message.dest, message.tag, message.seq,
            _KIND_OBJ, "", (), len(body),
        )
    return pickle.dumps(header, protocol=pickle.HIGHEST_PROTOCOL), body


def payload_scratch(kind: int, dtype: str, nbytes: int) -> Tuple[Any, memoryview]:
    """Receive-side buffer for one frame's payload.

    Returns ``(scratch, byte view)``: the transport fills the view with
    the frame's payload bytes (zero-copy for arrays — the view aliases
    the array's own buffer) and hands the scratch to
    :func:`payload_finish`.
    """
    if kind == _KIND_ND:
        dt = np.dtype(dtype)
        flat = np.empty(nbytes // dt.itemsize if dt.itemsize else 0, dtype=dt)
        return flat, memoryview(flat.view(np.uint8)) if nbytes else memoryview(b"")
    buf = bytearray(nbytes)
    return buf, memoryview(buf)


def payload_finish(kind: int, shape: Tuple[int, ...], scratch: Any) -> Any:
    """Turn a filled :func:`payload_scratch` buffer into the payload."""
    if kind == _KIND_ND:
        return scratch.reshape(shape)
    return pickle.loads(bytes(scratch))


# ---------------------------------------------------------------------------
# the shared per-process endpoint skeleton
# ---------------------------------------------------------------------------
class MeshEndpoint:
    """One rank's view of a multiprocess mesh (transport-agnostic half).

    Implements the :class:`~repro.comm.backend.RouterLike` surface the
    shared :class:`~repro.comm.communicator.Communicator` is built on:
    local mailboxes per channel (dynamic ``"<base>.<suffix>"``
    sub-channels included, mirroring
    :meth:`repro.comm.router.Router.mailbox`), delivery bookkeeping, and
    the abort/close state machine every multiprocess transport shares.
    Subclasses implement :meth:`_send_frame` (write one frame to the
    peer's byte pipe) and the :meth:`_shutdown_transport` /
    :meth:`_join_receivers` teardown hooks.
    """

    #: Remote payloads are framed (copied onto the wire) synchronously
    #: inside :meth:`deliver`, so the communicator may skip its
    #: defensive pre-send copy for remote destinations.
    remote_payloads_framed = True

    def __init__(
        self, rank: int, world_size: int, channels: Sequence[str] = DEFAULT_CHANNELS
    ) -> None:
        if world_size < 1:
            raise ValueError(f"world_size must be >= 1, got {world_size}")
        self.rank = int(rank)
        self.world_size = int(world_size)
        self.channels: Tuple[str, ...] = tuple(channels)
        if not self.channels:
            raise ValueError("at least one channel is required")
        self._mailboxes: Dict[str, Mailbox] = {
            ch: self._make_mailbox(self.rank, ch) for ch in self.channels
        }
        self._departed: set[int] = set()
        self._seq = itertools.count()
        self._lock = threading.Lock()
        self._message_count = 0
        self._byte_count = 0
        self._closed = False
        self._abort_reason: Optional[str] = None

    # ----------------------------------------------------------- plumbing
    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.world_size:
            raise ValueError(
                f"rank {rank} out of range for world of size {self.world_size}"
            )

    def _make_mailbox(self, rank: int, channel: str) -> Mailbox:
        """Mailbox factory hook.

        The shm transport returns work-stealing mailboxes whose blocked
        receivers pump the rings themselves; the socket transport uses
        the plain kind (its receiver threads already block in the
        kernel, which is as direct as a socket wake-up gets).
        """
        return Mailbox(rank, channel)

    # ------------------------------------------------------------- access
    def mailbox(self, rank: int, channel: str) -> Mailbox:
        """Local mailbox for ``(rank, channel)``; only this rank's are held here."""
        self._check_rank(rank)
        if rank != self.rank:
            raise ValueError(
                f"rank {self.rank} cannot open rank {rank}'s mailbox: a "
                "multiprocess transport only holds local mailboxes"
            )
        mailbox = self._mailboxes.get(channel)
        if mailbox is None:
            base = channel.split(".", 1)[0]
            with self._lock:
                mailbox = self._mailboxes.get(channel)
                if mailbox is None:
                    if base == channel or base not in self.channels:
                        raise KeyError(
                            f"unknown channel {channel!r}; available: "
                            f"{self.channels} (plus '<known>.<suffix>' "
                            f"dynamic sub-channels)"
                        )
                    mailbox = self._make_mailbox(self.rank, channel)
                    if self._closed:
                        # Born closed, mirroring Router.close() semantics:
                        # a straggler blocked on a late-created channel is
                        # woken instead of hanging until its timeout.
                        mailbox.close()
                    self._mailboxes[channel] = mailbox
                    self.channels = self.channels + (channel,)
        return mailbox

    # ------------------------------------------------------------ deliver
    def deliver(self, message: Message, channel: str) -> None:
        """Route ``message`` to its destination (local put or wire frame)."""
        self._check_rank(message.dest)
        self._check_rank(message.source)
        base = channel.split(".", 1)[0]
        if channel not in self.channels and (base == channel or base not in self.channels):
            raise KeyError(
                f"unknown channel {channel!r}; available: {self.channels} "
                f"(plus '<known>.<suffix>' dynamic sub-channels)"
            )
        if self._closed:
            raise MailboxClosed(
                f"rank {self.rank}: endpoint is closed"
                + (f" ({self._abort_reason})" if self._abort_reason else "")
            )
        message.seq = next(self._seq)
        with self._lock:
            self._message_count += 1
            self._byte_count += message.nbytes()
        if message.dest == self.rank:
            self.mailbox(self.rank, channel).put(message)
            return
        if message.dest in self._departed:
            # The peer already finished and tore its transport down; like
            # a thread world's mailbox-to-nobody, the send just evaporates.
            return
        self._send_frame(message, channel)

    def _send_frame(self, message: Message, channel: str) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------- stats
    @property
    def message_count(self) -> int:
        """Messages this endpoint has delivered (sent) so far."""
        with self._lock:
            return self._message_count

    @property
    def byte_count(self) -> int:
        """Array payload bytes this endpoint has delivered (sent) so far."""
        with self._lock:
            return self._byte_count

    def pending_messages(self) -> int:
        """Delivered-but-unreceived messages across this rank's mailboxes."""
        with self._lock:
            mailboxes = list(self._mailboxes.values())
        return sum(mb.pending() for mb in mailboxes)

    # -------------------------------------------------------------- close
    def abort(self, reason: str) -> None:
        """Wake every blocked receive on this rank (world failure path)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._abort_reason = reason
            mailboxes = list(self._mailboxes.values())
        for mb in mailboxes:
            mb.close()
        self._shutdown_transport()

    def close(self) -> None:
        """Orderly teardown after the SPMD function returned.

        Mailboxes stay readable (matching a finished thread rank whose
        queued messages remain inspectable); only the transport goes
        down, which peers observe as a normal departure.  Safe after an
        abort: the transport is already down, but receiver threads are
        still joined (and transport mappings released) exactly once.
        """
        with self._lock:
            already_closed = self._closed
            self._closed = True
        if not already_closed:
            self._shutdown_transport()
        self._join_receivers()

    def _shutdown_transport(self) -> None:
        raise NotImplementedError

    def _join_receivers(self) -> None:
        """Wait briefly for receiver threads after an orderly close."""


# ---------------------------------------------------------------------------
# the socket endpoint
# ---------------------------------------------------------------------------
class SocketEndpoint(MeshEndpoint):
    """One rank's view of the TCP socket mesh."""

    def __init__(
        self, rank: int, world_size: int, channels: Sequence[str] = DEFAULT_CHANNELS
    ) -> None:
        super().__init__(rank, world_size, channels)
        self._peers: Dict[int, socket.socket] = {}
        self._send_locks: Dict[int, threading.Lock] = {}
        self._receivers: List[threading.Thread] = []

    # ----------------------------------------------------------- plumbing
    def attach_peer(self, peer: int, sock: socket.socket) -> None:
        """Register the mesh socket for ``peer`` and start its receiver."""
        sock.settimeout(None)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._peers[peer] = sock
        self._send_locks[peer] = threading.Lock()
        thread = threading.Thread(
            target=self._recv_loop,
            args=(peer, sock),
            name=f"sockrecv-r{self.rank}-p{peer}",
            daemon=True,
        )
        self._receivers.append(thread)
        thread.start()

    # --------------------------------------------------------------- send
    def _send_frame(self, message: Message, channel: str) -> None:
        dest = message.dest
        sock = self._peers.get(dest)
        if sock is None:
            return
        head, body = pack_frame(message, channel)
        lock = self._send_locks[dest]
        try:
            with lock:
                sock.sendall(_HEADER_LEN.pack(len(head)) + head)
                if len(body):
                    sock.sendall(body)
        except OSError:
            # EPIPE/ECONNRESET: the peer departed between our check and the
            # write.  Same no-op semantics as a departed peer; a *crash* is
            # handled by the launcher's abort broadcast, not the send path.
            self._departed.add(dest)

    # ----------------------------------------------------------- receive
    def _recv_loop(self, peer: int, sock: socket.socket) -> None:
        try:
            while True:
                head_len_buf = _read_exact(sock, _HEADER_LEN.size)
                if head_len_buf is None:
                    break  # orderly EOF at a frame boundary: peer departed
                (head_len,) = _HEADER_LEN.unpack(head_len_buf)
                head = _read_exact(sock, head_len)
                if head is None:
                    raise ConnectionResetError("EOF inside a frame header")
                channel, source, dest, tag, seq, kind, dtype, shape, nbytes = (
                    pickle.loads(bytes(head))
                )
                scratch, view = payload_scratch(kind, dtype, nbytes)
                if nbytes:
                    # Zero-copy receive: the socket fills the array's
                    # own buffer, no intermediate bytes object.
                    if not _read_exact_into(sock, view):
                        raise ConnectionResetError("EOF inside a frame payload")
                payload = payload_finish(kind, shape, scratch)
                msg = Message(source=source, dest=dest, tag=tag, payload=payload, seq=seq)
                try:
                    self.mailbox(self.rank, channel).put(msg)
                except MailboxClosed:
                    return  # aborted while delivering; drop and exit
        except OSError:
            # Reset/teardown on the peer socket (including mid-frame EOF,
            # which _read_exact_into raises as ConnectionResetError).  A
            # peer may answer its own close() with RST while our frame is
            # in flight, so a socket error here is *departure*, never a
            # world failure: genuine crashes are detected by the
            # launcher's liveness check, which aborts every rank through
            # the control pipes.  Mirrors the send path's handling.
            pass
        except (EOFError, pickle.UnpicklingError) as exc:
            # Both processes are alive but the stream is unreadable — the
            # launcher cannot see this, so wake the local rank ourselves.
            if not self._closed:
                self.abort(f"corrupted stream from rank {peer}: {exc}")
        finally:
            self._departed.add(peer)
            try:
                sock.close()
            except OSError:
                pass

    # -------------------------------------------------------------- close
    def _shutdown_transport(self) -> None:
        for sock in self._peers.values():
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass

    def _join_receivers(self) -> None:
        for thread in self._receivers:
            thread.join(timeout=2.0)


# ---------------------------------------------------------------------------
# rendezvous + mesh establishment (runs inside each rank process)
# ---------------------------------------------------------------------------
def _build_mesh(
    rank: int,
    world_size: int,
    channels: Sequence[str],
    rendezvous_listener: Optional[socket.socket],
    rendezvous_addr: Tuple[str, int],
) -> SocketEndpoint:
    endpoint = SocketEndpoint(rank, world_size, channels)
    if world_size == 1:
        if rendezvous_listener is not None:
            rendezvous_listener.close()
        return endpoint

    data_listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    data_listener.bind(("127.0.0.1", 0))
    data_listener.listen(world_size)
    data_listener.settimeout(_SETUP_TIMEOUT)
    my_addr = data_listener.getsockname()

    # --- rank-0 rendezvous: collect and broadcast the address map -------
    addr_map = _rendezvous(
        rank, world_size, rendezvous_listener, rendezvous_addr, my_addr
    )

    # --- full mesh: dial the higher ranks, accept the lower ones --------
    for peer in range(rank + 1, world_size):
        sock = socket.create_connection(addr_map[peer], timeout=_SETUP_TIMEOUT)
        sock.sendall(_RANK_ID.pack(rank))
        endpoint.attach_peer(peer, sock)
    for _ in range(rank):
        sock, _ = data_listener.accept()
        sock.settimeout(_SETUP_TIMEOUT)
        raw = _read_exact(sock, _RANK_ID.size)
        if raw is None:
            raise ConnectionResetError("mesh peer closed during handshake")
        (peer,) = _RANK_ID.unpack(raw)
        endpoint.attach_peer(int(peer), sock)
    data_listener.close()
    return endpoint


def _rendezvous(
    rank: int,
    world_size: int,
    rendezvous_listener: Optional[socket.socket],
    rendezvous_addr: Tuple[str, int],
    my_payload: Any,
) -> Dict[int, Any]:
    """Rank-0 rendezvous: collect every rank's payload, broadcast the map.

    Used by the socket mesh (payloads are data-listener addresses) and
    as the setup barrier of the shm mesh (payloads are readiness
    markers, the broadcast doubles as the "all segments exist" signal).
    """
    if rank == 0:
        assert rendezvous_listener is not None
        rendezvous_listener.settimeout(_SETUP_TIMEOUT)
        payload_map: Dict[int, Any] = {0: my_payload}
        conns = []
        for _ in range(world_size - 1):
            conn, _ = rendezvous_listener.accept()
            conn.settimeout(_SETUP_TIMEOUT)
            peer_rank, peer_payload = _recv_obj(conn)
            payload_map[int(peer_rank)] = peer_payload
            conns.append(conn)
        for conn in conns:
            _send_obj(conn, payload_map)
            conn.close()
        rendezvous_listener.close()
        return payload_map
    if rendezvous_listener is not None:
        rendezvous_listener.close()
    conn = socket.create_connection(rendezvous_addr, timeout=_SETUP_TIMEOUT)
    conn.settimeout(_SETUP_TIMEOUT)
    _send_obj(conn, (rank, my_payload))
    payload_map = _recv_obj(conn)
    conn.close()
    return payload_map


# ---------------------------------------------------------------------------
# rank worker (child process)
# ---------------------------------------------------------------------------
def _pickle_safe_exception(exc: BaseException) -> BaseException:
    """Return ``exc`` if it survives a pickle round-trip, else a stand-in."""
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    except Exception:  # noqa: BLE001 - any pickling failure takes the fallback
        return RuntimeError(f"{type(exc).__name__}: {exc}")


def _abort_listener(control, endpoint: MeshEndpoint, done: threading.Event) -> None:
    while not done.is_set():
        try:
            if control.poll(0.1):
                control.recv()
                endpoint.abort("aborted by launcher: another rank failed")
                return
        except (EOFError, OSError):
            return


def _worker_main(
    rank: int,
    world_size: int,
    fn: Callable[..., Any],
    args: Tuple[Any, ...],
    kwargs: Dict[str, Any],
    mesh_builder: Callable[..., MeshEndpoint],
    mesh_args: Tuple[Any, ...],
    channels: Sequence[str],
    channel: str,
    default_recv_timeout: Optional[float],
    result_conn,
    control_conn,
) -> None:
    endpoint: Optional[MeshEndpoint] = None
    done = threading.Event()
    try:
        endpoint = mesh_builder(rank, world_size, channels, *mesh_args)
        listener = threading.Thread(
            target=_abort_listener,
            args=(control_conn, endpoint, done),
            name=f"abort-listener-r{rank}",
            daemon=True,
        )
        listener.start()
        comm = Communicator(
            endpoint, rank, channel=channel, default_timeout=default_recv_timeout
        )
        result = fn(comm, *args, **kwargs)
        try:
            result_conn.send(("ok", result))
        except Exception as exc:  # noqa: BLE001 - unpicklable result
            result_conn.send(
                (
                    "err",
                    RuntimeError(
                        f"rank {rank} returned an unpicklable result "
                        f"({type(result).__name__}): {exc}"
                    ),
                    traceback.format_exc(),
                )
            )
    except BaseException as exc:  # noqa: BLE001 - reported to the launcher
        try:
            result_conn.send(("err", _pickle_safe_exception(exc), traceback.format_exc()))
        except (OSError, ValueError, EOFError):
            pass
    finally:
        done.set()
        if endpoint is not None:
            endpoint.close()
        try:
            result_conn.close()
        except OSError:
            pass


# ---------------------------------------------------------------------------
# the backend (launcher side)
# ---------------------------------------------------------------------------
@register_backend("process")
class ProcessBackend(CommBackend):
    """One OS process per rank over a local TCP socket mesh.

    The launcher below — spawn, result collection, liveness checks, the
    abort broadcast, the hang/timeout handling — is transport-agnostic;
    the shm backend (:mod:`repro.comm.shm_backend`) subclasses this
    class and overrides only the ``_setup_world`` / ``_mesh_args`` /
    ``_cleanup_world`` hooks that describe the byte pipe.
    """

    name = "process"

    #: Grace period for surviving ranks to drain after an abort broadcast.
    abort_grace: float = 10.0

    def _context(self):
        try:
            return multiprocessing.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX platforms
            raise BackendUnavailableError(
                f"the {self.name} backend requires the fork start method "
                "(POSIX only); use backend='thread' on this platform"
            ) from exc

    # ------------------------------------------------------ transport hooks
    def _setup_world(self, ctx, world_size: int, opts: Dict[str, Any]) -> Dict[str, Any]:
        """Allocate launcher-side transport state (inherited via fork)."""
        if opts:
            raise TypeError(
                f"{self.name} backend got unexpected options {sorted(opts)}"
            )
        rendezvous = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        rendezvous.bind(("127.0.0.1", 0))
        rendezvous.listen(world_size)
        return {"rendezvous": rendezvous, "addr": rendezvous.getsockname()}

    def _mesh_builder(self) -> Callable[..., MeshEndpoint]:
        return _build_mesh

    def _mesh_args(self, setup: Dict[str, Any], rank: int) -> Tuple[Any, ...]:
        return (setup["rendezvous"] if rank == 0 else None, setup["addr"])

    def _post_spawn(self, setup: Dict[str, Any]) -> None:
        """Release launcher copies of resources the children inherited."""
        setup["rendezvous"].close()

    def _cleanup_world(self, setup: Dict[str, Any]) -> None:
        """Tear down launcher-side transport state after the world ended."""

    # -------------------------------------------------------------- launch
    def run(
        self,
        fn: Callable[..., Any],
        world_size: int,
        args: Tuple[Any, ...] = (),
        kwargs: Optional[Dict[str, Any]] = None,
        *,
        channels: Sequence[str] = DEFAULT_CHANNELS,
        channel: str = Channel.APP,
        timeout: Optional[float] = 300.0,
        default_recv_timeout: Optional[float] = 120.0,
        **opts: Any,
    ) -> List[Any]:
        kwargs = kwargs or {}
        ctx = self._context()
        setup = self._setup_world(ctx, world_size, opts)
        try:
            result_pipes = [ctx.Pipe(duplex=False) for _ in range(world_size)]
            control_pipes = [ctx.Pipe(duplex=False) for _ in range(world_size)]
            procs = []
            mesh_builder = self._mesh_builder()
            for rank in range(world_size):
                proc = ctx.Process(
                    target=_worker_main,
                    args=(
                        rank,
                        world_size,
                        fn,
                        args,
                        kwargs,
                        mesh_builder,
                        self._mesh_args(setup, rank),
                        tuple(channels),
                        channel,
                        default_recv_timeout,
                        result_pipes[rank][1],
                        control_pipes[rank][0],
                    ),
                    name=f"rank{rank}",
                    daemon=True,
                )
                procs.append(proc)
                proc.start()
            # The children inherited their ends via fork; release the parent's.
            self._post_spawn(setup)
            for recv_end, send_end in result_pipes:
                send_end.close()
            for recv_end, send_end in control_pipes:
                recv_end.close()
            return self._monitor(procs, result_pipes, control_pipes, world_size, timeout)
        finally:
            self._cleanup_world(setup)

    # ------------------------------------------------------------- monitor
    def _monitor(
        self,
        procs: List[Any],
        result_pipes: List[Any],
        control_pipes: List[Any],
        world_size: int,
        timeout: Optional[float],
    ) -> List[Any]:
        results: List[Any] = [None] * world_size
        reported: Dict[int, bool] = {}
        failures: Dict[int, BaseException] = {}
        tracebacks: Dict[int, str] = {}
        aborted = False

        def _broadcast_abort() -> None:
            nonlocal aborted
            if aborted:
                return
            aborted = True
            for rank in range(world_size):
                if rank not in reported:
                    try:
                        control_pipes[rank][1].send("abort")
                    except (OSError, ValueError, BrokenPipeError):
                        pass

        def _drain(rank: int) -> None:
            conn = result_pipes[rank][0]
            try:
                if conn.poll(0):
                    outcome = conn.recv()
                    reported[rank] = True
                    if outcome[0] == "ok":
                        results[rank] = outcome[1]
                    else:
                        failures[rank] = outcome[1]
                        tracebacks[rank] = outcome[2]
            except (EOFError, OSError):
                pass  # handled by the liveness check below

        deadline = None if timeout is None else time.monotonic() + timeout
        grace_deadline: Optional[float] = None
        timed_out = False
        while len(reported) < world_size:
            for rank in range(world_size):
                if rank not in reported:
                    _drain(rank)
            for rank, proc in enumerate(procs):
                if rank not in reported and not proc.is_alive():
                    _drain(rank)  # result may have raced the exit
                    if rank not in reported:
                        reported[rank] = True
                        failures[rank] = ProcessCrashError(
                            f"rank {rank} exited with code {proc.exitcode} "
                            "without reporting a result"
                        )
                        tracebacks[rank] = ""
            if failures:
                _broadcast_abort()
                if grace_deadline is None:
                    grace_deadline = time.monotonic() + self.abort_grace
            if len(reported) >= world_size:
                break
            now = time.monotonic()
            if grace_deadline is not None and now >= grace_deadline:
                break
            if deadline is not None and now >= deadline:
                timed_out = True
                _broadcast_abort()
                # Short grace only: a rank blocked in communication wakes
                # on the abort, one stuck in compute needs terminate().
                grace_deadline = now + min(2.0, self.abort_grace)
                deadline = None
            # Block until a result arrives or a child exits — no busy
            # polling.  A drained-but-alive rank's pipe never re-signals,
            # so only unreported ranks' handles are waited on.
            pending = [r for r in range(world_size) if r not in reported]
            handles: List[Any] = [result_pipes[r][0] for r in pending]
            handles += [procs[r].sentinel for r in pending]
            wait_bounds = [
                b - time.monotonic()
                for b in (deadline, grace_deadline)
                if b is not None
            ]
            multiprocessing.connection.wait(
                handles, timeout=max(0.0, min(wait_bounds)) if wait_bounds else None
            )

        hung = []
        for rank, proc in enumerate(procs):
            proc.join(timeout=0.5)
            if proc.is_alive():
                hung.append(proc.name)
                proc.terminate()
                proc.join(timeout=2.0)
                if proc.is_alive():  # pragma: no cover - terminate() sufficed so far
                    proc.kill()
                    proc.join(timeout=1.0)
        for (recv_end, _), (_, send_end) in zip(result_pipes, control_pipes):
            for conn in (recv_end, send_end):
                try:
                    conn.close()
                except OSError:
                    pass

        if (timed_out or hung) and not failures:
            raise WorldError(
                {-1: TimeoutError(f"ranks did not finish within {timeout}s: {hung}")},
                {-1: ""},
            )
        if failures:
            raise WorldError(failures, tracebacks)
        return results
