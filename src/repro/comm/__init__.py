"""Thread-backed message-passing substrate.

This package plays the role of the MPI layer in the original paper: it
provides tagged point-to-point communication between *ranks*, where each
rank is backed by one or more Python threads inside a single process.

Design
------
* A :class:`~repro.comm.router.Router` owns one
  :class:`~repro.comm.mailbox.Mailbox` per ``(rank, channel)`` pair.
  Channels separate the *application* traffic (synchronous collectives
  issued by the compute thread) from the *library* traffic (partial
  collectives progressed by the communication thread, mirroring the
  library-offloading design of Section 4.3 of the paper).
* A :class:`~repro.comm.communicator.Communicator` is the per-rank handle
  exposing ``send`` / ``recv`` / ``isend`` / ``irecv`` / ``barrier`` and
  rank/size queries, in the spirit of ``mpi4py``'s ``Comm`` objects.
* :func:`~repro.comm.world.run_world` spawns one thread per rank, runs a
  user function on each and collects results or re-raises failures.

All payloads are either NumPy arrays (copied on send to avoid shared
mutation, as a real network would) or small picklable Python objects.
"""

from repro.comm.message import Message, ANY_SOURCE, ANY_TAG
from repro.comm.mailbox import Mailbox, MailboxClosed
from repro.comm.router import Router, Channel
from repro.comm.reduce_ops import ReduceOp, SUM, PROD, MAX, MIN, AVG, get_op
from repro.comm.requests import Request, SendRequest, RecvRequest
from repro.comm.communicator import Communicator, CommTimeoutError
from repro.comm.world import ThreadWorld, run_world, WorldError

__all__ = [
    "Message",
    "ANY_SOURCE",
    "ANY_TAG",
    "Mailbox",
    "MailboxClosed",
    "Router",
    "Channel",
    "ReduceOp",
    "SUM",
    "PROD",
    "MAX",
    "MIN",
    "AVG",
    "get_op",
    "Request",
    "SendRequest",
    "RecvRequest",
    "Communicator",
    "CommTimeoutError",
    "ThreadWorld",
    "run_world",
    "WorldError",
]
