"""Pluggable message-passing substrate.

This package plays the role of the MPI layer in the original paper: it
provides tagged point-to-point communication between *ranks* behind a
backend registry (:mod:`repro.comm.backend`), so the same SPMD code runs
on an in-process thread transport or on one OS process per rank.

Design
------
* :func:`~repro.comm.backend.launch` is the ``mpiexec`` of the library:
  ``launch(fn, P, backend="thread"|"process")`` runs ``fn(comm, ...)``
  on ``P`` ranks of the chosen :class:`~repro.comm.backend.CommBackend`
  and collects results or re-raises failures as a
  :class:`~repro.comm.backend.WorldError`.
* A :class:`~repro.comm.communicator.Communicator` is the per-rank handle
  exposing ``send`` / ``recv`` / ``isend`` / ``irecv`` / ``barrier`` and
  rank/size queries, in the spirit of ``mpi4py``'s ``Comm`` objects.  It
  is shared by both transports: each implements the small
  :class:`~repro.comm.backend.RouterLike` surface underneath it.
* The thread backend's :class:`~repro.comm.router.Router` owns one
  :class:`~repro.comm.mailbox.Mailbox` per ``(rank, channel)`` pair.
  Channels separate the *application* traffic (synchronous collectives
  issued by the compute thread) from the *library* traffic (partial
  collectives progressed by the communication thread, mirroring the
  library-offloading design of Section 4.3 of the paper).
* The process backend (:mod:`repro.comm.process_backend`) runs one OS
  process per rank over a local TCP mesh with rank-0 rendezvous,
  pickled control messages and zero-copy framed NumPy payloads.

All payloads are either NumPy arrays (copied on send to avoid shared
mutation, as a real network would) or small picklable Python objects —
pickle-safety is part of the payload contract so the same program runs
on every transport.
"""

from repro.comm import tags
from repro.comm.message import Message, ANY_SOURCE, ANY_TAG
from repro.comm.mailbox import Mailbox, MailboxClosed
from repro.comm.router import Router, Channel
from repro.comm.reduce_ops import ReduceOp, SUM, PROD, MAX, MIN, AVG, get_op
from repro.comm.requests import Request, SendRequest, RecvRequest
from repro.comm.communicator import Communicator, CommTimeoutError
from repro.comm.backend import (
    BackendUnavailableError,
    CommBackend,
    CommunicatorLike,
    RouterLike,
    WorldError,
    available_backends,
    backend_unavailable_reason,
    default_backend_name,
    get_backend,
    launch,
    mark_backend_unavailable,
    register_backend,
    set_default_backend,
)
from repro.comm.subworld import SubsetCommunicator, split_world
from repro.comm.world import ThreadBackend, ThreadWorld, run_world

__all__ = [
    "tags",
    "Message",
    "ANY_SOURCE",
    "ANY_TAG",
    "Mailbox",
    "MailboxClosed",
    "Router",
    "Channel",
    "ReduceOp",
    "SUM",
    "PROD",
    "MAX",
    "MIN",
    "AVG",
    "get_op",
    "Request",
    "SendRequest",
    "RecvRequest",
    "Communicator",
    "CommTimeoutError",
    "BackendUnavailableError",
    "CommBackend",
    "CommunicatorLike",
    "RouterLike",
    "WorldError",
    "available_backends",
    "backend_unavailable_reason",
    "default_backend_name",
    "get_backend",
    "launch",
    "mark_backend_unavailable",
    "register_backend",
    "set_default_backend",
    "SubsetCommunicator",
    "split_world",
    "ThreadBackend",
    "ThreadWorld",
    "run_world",
]
