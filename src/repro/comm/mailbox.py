"""Per-rank mailbox with tag/source matching.

A mailbox is an unbounded thread-safe queue of :class:`Message` objects
plus the matching logic needed for MPI-like semantics: a receiver may ask
for a message from a specific source and/or with a specific tag, and
messages that do not match stay queued for later receives (out-of-order
matching, FIFO per matching key).
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Optional

from repro.comm.message import ANY_SOURCE, ANY_TAG, Message


class MailboxClosed(RuntimeError):
    """Raised when receiving from (or delivering to) a closed mailbox."""


class Mailbox:
    """Thread-safe tagged message queue for one ``(rank, channel)`` endpoint."""

    def __init__(self, owner_rank: int, channel: str) -> None:
        self.owner_rank = owner_rank
        self.channel = channel
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._messages: Deque[Message] = deque()
        self._closed = False

    # ------------------------------------------------------------------ put
    def put(self, message: Message) -> None:
        """Deliver ``message`` into the mailbox (called by the router)."""
        with self._cond:
            if self._closed:
                raise MailboxClosed(
                    f"mailbox rank={self.owner_rank} channel={self.channel} is closed"
                )
            self._messages.append(message)
            self._cond.notify_all()

    # ------------------------------------------------------------------ get
    def _find(self, source: int, tag: int) -> Optional[Message]:
        for i, msg in enumerate(self._messages):
            if msg.matches(source, tag):
                del self._messages[i]
                return msg
        return None

    def get(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        timeout: Optional[float] = None,
    ) -> Message:
        """Blocking receive of the first message matching ``(source, tag)``.

        Raises
        ------
        TimeoutError
            If ``timeout`` (seconds) elapses with no matching message.
        MailboxClosed
            If the mailbox is closed and empty of matching messages.
        """
        with self._cond:
            while True:
                msg = self._find(source, tag)
                if msg is not None:
                    return msg
                if self._closed:
                    raise MailboxClosed(
                        f"mailbox rank={self.owner_rank} channel={self.channel} "
                        "closed while waiting for a message"
                    )
                if not self._cond.wait(timeout=timeout):
                    raise TimeoutError(
                        f"rank {self.owner_rank}/{self.channel}: timed out waiting "
                        f"for message from source={source} tag={tag}"
                    )

    def poll(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Optional[Message]:
        """Non-blocking receive; returns ``None`` if no matching message."""
        with self._cond:
            return self._find(source, tag)

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """Whether a matching message is queued (without consuming it)."""
        with self._cond:
            return any(m.matches(source, tag) for m in self._messages)

    # ---------------------------------------------------------------- admin
    def close(self) -> None:
        """Close the mailbox, waking any blocked receivers."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    def pending(self) -> int:
        """Number of queued (unmatched) messages."""
        with self._lock:
            return len(self._messages)
