"""Seed-rendezvous TCP backend: the multi-host shape of the socket mesh.

The ``process`` backend's world is born from one launcher: every rank is
a child of the same process and the rendezvous address is whatever the
launcher bound.  This backend keeps the exact same data plane (full TCP
mesh, frames from :mod:`repro.comm.process_backend`) but makes the
rendezvous *explicit*: ranks meet at a **seed address** given by the
caller (``backend_opts={"seed_addr": "host:port"}`` or the
``REPRO_SEED_ADDR`` environment variable), which is what lets several
launchers — on one machine or on many — contribute ranks to a single
world.

Single-launcher (the default) is exactly the process backend with an
explicit seed::

    launch(fn, 4, backend="tcp")                       # ephemeral seed
    launch(fn, 4, backend="tcp",
           backend_opts={"seed_addr": "127.0.0.1:29400"})

Multi-launcher: each launcher spawns a *subset* of the ranks and they
join over the seed.  The launcher owning rank 0 binds and serves the
seed; every other launcher only dials it::

    # terminal/host A (serves the seed because it owns rank 0)
    launch(fn, 4, backend="tcp", backend_opts={
        "seed_addr": "10.0.0.1:29400", "local_ranks": [0, 1],
        "bind_host": "10.0.0.1"})
    # terminal/host B
    launch(fn, 4, backend="tcp", backend_opts={
        "seed_addr": "10.0.0.1:29400", "local_ranks": [2, 3],
        "bind_host": "10.0.0.2"})

``bind_host`` is the interface the rank data listeners bind to (and
advertise through the seed); the loopback default is right for
single-machine worlds, a routable address is required across machines.
Each launcher returns a result list indexed by *global* rank with
``None`` at positions owned by other launchers, and monitors only its
own ranks: a remote launcher's crash surfaces locally as peer
departures or a timeout, not as a rank failure.

Options
-------
``seed_addr``
    ``"host:port"`` string or ``(host, port)`` tuple.  Falls back to
    ``REPRO_SEED_ADDR``; when absent entirely, an ephemeral loopback
    seed is used (single-launcher only).
``local_ranks``
    The global ranks this launcher spawns (default: all of them).
    Requires an explicit ``seed_addr`` with a fixed port, since every
    launcher must name the same seed.
``bind_host``
    Interface for this launcher's rank data listeners (default
    ``127.0.0.1``).
``start_method``
    Inherited from the process launcher: ``fork`` (default where
    available) or ``spawn`` (pickled entry points; the SPMD function
    must then be a module-level callable).
"""

from __future__ import annotations

import os
from typing import Any, Dict, Tuple

from repro.comm.backend import register_backend
from repro.comm.process_backend import ProcessBackend, _RendezvousService

__all__ = ["TcpBackend", "SEED_ADDR_ENV_VAR"]

#: Environment variable naming the seed address (``host:port``).
SEED_ADDR_ENV_VAR = "REPRO_SEED_ADDR"


def _parse_addr(value: Any) -> Tuple[str, int]:
    """Normalise a seed address to ``(host, port)``."""
    if isinstance(value, (tuple, list)) and len(value) == 2:
        return (str(value[0]), int(value[1]))
    if isinstance(value, str):
        host, sep, port = value.rpartition(":")
        if sep and host:
            try:
                return (host, int(port))
            except ValueError:
                pass
    raise ValueError(
        f"seed address must be 'host:port' or a (host, port) pair, got {value!r}"
    )


@register_backend("tcp")
class TcpBackend(ProcessBackend):
    """Socket mesh whose ranks rendezvous at a caller-provided seed."""

    name = "tcp"

    def _setup_world(self, ctx, world_size: int, opts: Dict[str, Any]) -> Dict[str, Any]:
        opts = dict(opts)
        seed = opts.pop("seed_addr", None)
        if seed is None:
            seed = os.environ.get(SEED_ADDR_ENV_VAR) or None
        local_ranks = opts.pop("local_ranks", None)
        bind_host = str(opts.pop("bind_host", "127.0.0.1"))
        self._reject_unknown_opts(opts)

        if local_ranks is None:
            local = list(range(world_size))
        else:
            local = sorted({int(r) for r in local_ranks})
            if not local:
                raise ValueError(f"local_ranks must name at least one rank, got {local_ranks!r}")
            bad = [r for r in local if not 0 <= r < world_size]
            if bad:
                raise ValueError(
                    f"local_ranks {bad} out of range for world of size {world_size}"
                )
            if seed is None:
                raise ValueError(
                    f"multi-launcher mode (local_ranks={local!r}) requires an "
                    f"explicit seed_addr shared by every launcher "
                    f"(backend opt or ${SEED_ADDR_ENV_VAR})"
                )

        service = None
        if world_size == 1:
            addr = None
        elif seed is None:
            # Single-launcher, no seed named: an ephemeral loopback seed,
            # exactly the process backend's behaviour.
            service = _RendezvousService(world_size)
            addr = service.addr
        else:
            addr = _parse_addr(seed)
            if 0 in local:
                # The launcher owning rank 0 owns the seed.
                service = _RendezvousService(world_size, addr)
                addr = service.addr
        return {
            "service": service,
            "addr": addr,
            "local_ranks": local,
            "bind_host": bind_host,
        }

    def _mesh_args(self, setup: Dict[str, Any], rank: int) -> Tuple[Any, ...]:
        return (setup["addr"], setup["bind_host"])
