"""Thread backend: spawn one thread per rank and run an SPMD function.

This plays the role of ``mpiexec -n P python script.py`` for the
in-process transport: :class:`ThreadBackend` (registered as
``"thread"`` in the :mod:`repro.comm.backend` registry) runs
``fn(comm, *args)`` on ``P`` threads, one per rank, and returns the
per-rank results.  Exceptions on any rank are collected and re-raised as
a :class:`~repro.comm.backend.WorldError` carrying all failures, so a
bug on rank 3 does not silently hang the remaining ranks: the router is
closed, which wakes every blocked receive.

:func:`run_world` is the historical entry point, kept as a deprecated
shim over :func:`repro.comm.backend.launch`.
"""

from __future__ import annotations

import threading
import traceback
import warnings
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.comm.backend import CommBackend, WorldError, register_backend
from repro.comm.communicator import Communicator
from repro.comm.router import Channel, DEFAULT_CHANNELS, Router

__all__ = ["ThreadWorld", "ThreadBackend", "WorldError", "run_world"]


@dataclass
class ThreadWorld:
    """A set of ranks sharing one router.

    Use as a context manager to guarantee the router is closed (unblocking
    any straggler threads) even when a rank fails.
    """

    world_size: int
    channels: Sequence[str] = DEFAULT_CHANNELS
    default_timeout: Optional[float] = 120.0
    router: Router = field(init=False)

    def __post_init__(self) -> None:
        self.router = Router(self.world_size, channels=self.channels)

    def communicator(self, rank: int, channel: str = Channel.APP) -> Communicator:
        """Build the communicator for ``rank`` on ``channel``."""
        return Communicator(
            self.router, rank, channel=channel, default_timeout=self.default_timeout
        )

    def communicators(self, channel: str = Channel.APP) -> List[Communicator]:
        """Communicators for every rank (useful for single-threaded tests)."""
        return [self.communicator(r, channel) for r in range(self.world_size)]

    def close(self) -> None:
        self.router.close()

    def __enter__(self) -> "ThreadWorld":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@register_backend("thread")
class ThreadBackend(CommBackend):
    """One Python thread per rank inside this process.

    The fastest world to spawn and the reference semantics every other
    transport is held to (see ``tests/test_backend_conformance.py``);
    ranks share the GIL, so it measures scheduling and copy costs rather
    than true parallel compute.
    """

    name = "thread"

    def run(
        self,
        fn: Callable[..., Any],
        world_size: int,
        args: Tuple[Any, ...] = (),
        kwargs: Optional[Dict[str, Any]] = None,
        *,
        channels: Sequence[str] = DEFAULT_CHANNELS,
        channel: str = Channel.APP,
        timeout: Optional[float] = 300.0,
        default_recv_timeout: Optional[float] = 120.0,
        thread_name_prefix: str = "rank",
        **opts: Any,
    ) -> List[Any]:
        kwargs = kwargs or {}
        world = ThreadWorld(
            world_size, channels=channels, default_timeout=default_recv_timeout
        )
        results: List[Any] = [None] * world_size
        failures: Dict[int, BaseException] = {}
        tracebacks: Dict[int, str] = {}
        lock = threading.Lock()

        def _target(rank: int) -> None:
            comm = world.communicator(rank, channel=channel)
            try:
                results[rank] = fn(comm, *args, **kwargs)
            except BaseException as exc:  # noqa: BLE001 - reported to the caller
                with lock:
                    failures[rank] = exc
                    tracebacks[rank] = traceback.format_exc()
                # Unblock every other rank: they would otherwise wait forever
                # for messages this rank will never send.
                world.close()

        threads = [
            threading.Thread(
                target=_target,
                args=(rank,),
                name=f"{thread_name_prefix}{rank}",
                daemon=True,
            )
            for rank in range(world_size)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=timeout)

        hung = [t.name for t in threads if t.is_alive()]
        world.close()
        if hung and not failures:
            raise WorldError(
                {-1: TimeoutError(f"ranks did not finish within {timeout}s: {hung}")},
                {-1: ""},
            )
        if failures:
            raise WorldError(failures, tracebacks)
        return results


def run_world(
    world_size: int,
    fn: Callable[..., Any],
    *args: Any,
    channels: Sequence[str] = DEFAULT_CHANNELS,
    channel: str = Channel.APP,
    timeout: Optional[float] = 300.0,
    default_recv_timeout: Optional[float] = 120.0,
    thread_name_prefix: str = "rank",
    **kwargs: Any,
) -> List[Any]:
    """Deprecated: use :func:`repro.comm.backend.launch` instead.

    ``run_world(P, fn, *args)`` is the pre-backend-registry spelling of
    ``launch(fn, P, *args, backend="thread")``; it always runs the
    thread transport.  Kept as a thin shim so external callers keep
    working one release longer.
    """
    warnings.warn(
        "run_world() is deprecated; use repro.comm.launch(fn, world_size, ..., "
        "backend='thread') instead",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.comm.backend import get_backend

    return get_backend("thread").run(
        fn,
        world_size,
        args,
        kwargs,
        channels=channels,
        channel=channel,
        timeout=timeout,
        default_recv_timeout=default_recv_timeout,
        thread_name_prefix=thread_name_prefix,
    )
