"""Thread world: spawn one thread per rank and run an SPMD function.

This plays the role of ``mpiexec -n P python script.py`` for the in-process
transport: :func:`run_world` runs ``fn(comm, *args)`` on ``P`` threads, one
per rank, and returns the per-rank results.  Exceptions on any rank are
collected and re-raised as a :class:`WorldError` carrying all failures, so
a bug on rank 3 does not silently hang the remaining ranks: the router is
closed, which wakes every blocked receive.
"""

from __future__ import annotations

import threading
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.comm.communicator import Communicator
from repro.comm.router import Channel, DEFAULT_CHANNELS, Router


class WorldError(RuntimeError):
    """One or more ranks raised an exception during :func:`run_world`."""

    def __init__(self, failures: Dict[int, BaseException], tracebacks: Dict[int, str]):
        self.failures = failures
        self.tracebacks = tracebacks
        lines = [f"{len(failures)} rank(s) failed:"]
        for rank in sorted(failures):
            lines.append(f"--- rank {rank}: {failures[rank]!r}")
            lines.append(tracebacks[rank])
        super().__init__("\n".join(lines))


@dataclass
class ThreadWorld:
    """A set of ranks sharing one router.

    Use as a context manager to guarantee the router is closed (unblocking
    any straggler threads) even when a rank fails.
    """

    world_size: int
    channels: Sequence[str] = DEFAULT_CHANNELS
    default_timeout: Optional[float] = 120.0
    router: Router = field(init=False)

    def __post_init__(self) -> None:
        self.router = Router(self.world_size, channels=self.channels)

    def communicator(self, rank: int, channel: str = Channel.APP) -> Communicator:
        """Build the communicator for ``rank`` on ``channel``."""
        return Communicator(
            self.router, rank, channel=channel, default_timeout=self.default_timeout
        )

    def communicators(self, channel: str = Channel.APP) -> List[Communicator]:
        """Communicators for every rank (useful for single-threaded tests)."""
        return [self.communicator(r, channel) for r in range(self.world_size)]

    def close(self) -> None:
        self.router.close()

    def __enter__(self) -> "ThreadWorld":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def run_world(
    world_size: int,
    fn: Callable[..., Any],
    *args: Any,
    channels: Sequence[str] = DEFAULT_CHANNELS,
    channel: str = Channel.APP,
    timeout: Optional[float] = 300.0,
    default_recv_timeout: Optional[float] = 120.0,
    thread_name_prefix: str = "rank",
    **kwargs: Any,
) -> List[Any]:
    """Run ``fn(comm, *args, **kwargs)`` on ``world_size`` rank threads.

    Parameters
    ----------
    world_size:
        Number of ranks (threads) to spawn.
    fn:
        The SPMD function.  Its first argument is the rank's
        :class:`Communicator` on ``channel``.
    timeout:
        Overall join timeout per rank, in seconds.
    default_recv_timeout:
        Default timeout installed on every rank's blocking receives.

    Returns
    -------
    list
        ``fn``'s return value per rank, indexed by rank.

    Raises
    ------
    WorldError
        If any rank raised; contains per-rank exceptions and tracebacks.
    """
    world = ThreadWorld(
        world_size, channels=channels, default_timeout=default_recv_timeout
    )
    results: List[Any] = [None] * world_size
    failures: Dict[int, BaseException] = {}
    tracebacks: Dict[int, str] = {}
    lock = threading.Lock()

    def _target(rank: int) -> None:
        comm = world.communicator(rank, channel=channel)
        try:
            results[rank] = fn(comm, *args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - reported to the caller
            with lock:
                failures[rank] = exc
                tracebacks[rank] = traceback.format_exc()
            # Unblock every other rank: they would otherwise wait forever
            # for messages this rank will never send.
            world.close()

    threads = [
        threading.Thread(
            target=_target, args=(rank,), name=f"{thread_name_prefix}{rank}", daemon=True
        )
        for rank in range(world_size)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=timeout)

    hung = [t.name for t in threads if t.is_alive()]
    world.close()
    if hung and not failures:
        raise WorldError(
            {-1: TimeoutError(f"ranks did not finish within {timeout}s: {hung}")},
            {-1: ""},
        )
    if failures:
        raise WorldError(failures, tracebacks)
    return results
