"""The global tag-region map: every reserved tag range, declared once.

Three subsystems of this codebase number their messages out of disjoint
integer tag ranges: the persistent solo/majority schedules
(:mod:`repro.collectives.schedules`), the partial-collective progress
thread (:mod:`repro.collectives.partial`), the dissemination barrier
(:mod:`repro.comm.communicator`) and the synchronous collectives
(:mod:`repro.collectives.sync`).  Historically each declared its own
magic base constant, and nothing asserted that the ranges stay disjoint —
PR 1 fixed one silent collision found the hard way at P > 512.

This module is now the single source of truth.  Every reserved region is
a :class:`TagRegion` row in :data:`TAG_REGIONS`; the owning modules
import their bases from here, tags are minted through the helpers below
(which refuse to leave their region), and
:func:`check_region_disjointness` — run at import time and again by
``python -m repro verify`` — proves the table is pairwise disjoint.

Layout (all bounds half-open)::

    [0,            10_000_000)   free for applications (user tags)
    [10_000_000,   20_000_000)   solo-schedule activation messages
    [20_000_000,  100_000_000)   solo-schedule reduction rounds
    [100_000_000, 200_000_000)   partial-collective activation broadcast
    [200_000_000, 300_000_000)   partial-collective quorum arrivals
    [300_000_000, 400_000_000)   serving tier (requests, responses,
                                 weight hot-swap, control)
    [400_000_000, 500_000_000)   telemetry (clock-sync ping/pong,
                                 trace-buffer shipment to rank 0)
    [1_000_000_000, 2_000_000_000)   dissemination barrier
    [2_000_000_000, 2_000_000_000 + 2^62)   synchronous collectives
    [2_000_000_000 + 2^62, 2_000_000_000 + 2^62 + 2^61)
                                     sharded-optimizer collectives
                                     (reduce-scatter / allgather-flat)

The synchronous and sharding regions additionally carry an internal
``(epoch, phase, round, chunk)`` field layout, declared here so both the
collectives and the static schedule verifier
(:mod:`repro.analysis.schedule_verifier`) can mint *and* decode tags from
the same constants.  Both layouts top out below ``2^63``, so every tag
stays exact in the int64/u64 headers of the framing transports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple, Optional, Tuple

# ---------------------------------------------------------------------------
# region table
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TagRegion:
    """One reserved, half-open ``[lo, hi)`` range of the global tag space."""

    name: str
    lo: int
    hi: int
    description: str

    def __contains__(self, tag: int) -> bool:
        return self.lo <= tag < self.hi

    @property
    def span(self) -> int:
        """Number of distinct tags the region can hold."""
        return self.hi - self.lo

    def check(self, tag: int, what: str) -> int:
        """Return ``tag`` if it lies inside this region, else raise."""
        if tag not in self:
            raise ValueError(
                f"{what} tag {tag} escapes the {self.name!r} region "
                f"[{self.lo}, {self.hi})"
            )
        return tag


# -- solo/majority persistent schedules (repro.collectives.schedules) -------
SOLO_ACTIVATION_TAG_BASE = 10_000_000
SOLO_REDUCTION_TAG_BASE = 20_000_000
#: Tags reserved per persistent-schedule round (activation + log2(P) rounds).
SOLO_TAGS_PER_ROUND = 64

# -- partial collectives (repro.collectives.partial) ------------------------
PARTIAL_ACTIVATION_TAG_BASE = 100_000_000
PARTIAL_ARRIVAL_TAG_BASE = 200_000_000

# -- serving tier (repro.serving) -------------------------------------------
SERVING_TAG_BASE = 300_000_000
#: Inference batch requests, frontend -> replica; one tag slot per batch
#: sequence number, recycled modulo the capacity.
SERVING_REQUEST_TAG_BASE = SERVING_TAG_BASE
SERVING_REQUEST_CAPACITY = 40_000_000
#: Inference batch responses, replica -> frontend; a response echoes the
#: sequence number (and thus the tag slot) of the request it answers.
SERVING_RESPONSE_TAG_BASE = SERVING_REQUEST_TAG_BASE + SERVING_REQUEST_CAPACITY
SERVING_RESPONSE_CAPACITY = 40_000_000
#: Weight hot-swap payloads and version announcements, publisher ->
#: replica/frontend; one tag slot per model version, recycled modulo the
#: capacity.
SERVING_SWAP_TAG_BASE = SERVING_RESPONSE_TAG_BASE + SERVING_RESPONSE_CAPACITY
SERVING_SWAP_CAPACITY = 10_000_000
#: Serving control messages (stop, health probes).
SERVING_CONTROL_TAG_BASE = SERVING_SWAP_TAG_BASE + SERVING_SWAP_CAPACITY
#: Control kinds addressable within the control block.
SERVING_CONTROL_CAPACITY = 10_000_000

# -- telemetry (repro.obs.collect) ------------------------------------------
TELEMETRY_TAG_BASE = 400_000_000
#: Clock-sync pings, rank 0 -> peer; one tag slot per (peer, round) so
#: repeated estimation rounds can never steal each other's messages.
TELEMETRY_PING_TAG_BASE = TELEMETRY_TAG_BASE
TELEMETRY_PING_CAPACITY = 40_000_000
#: Clock-sync pongs, peer -> rank 0, echoing the (peer, round) slot.
TELEMETRY_PONG_TAG_BASE = TELEMETRY_PING_TAG_BASE + TELEMETRY_PING_CAPACITY
TELEMETRY_PONG_CAPACITY = 40_000_000
#: Flight-recorder buffer shipment, rank r -> rank 0; one slot per rank.
TELEMETRY_BUFFER_TAG_BASE = TELEMETRY_PONG_TAG_BASE + TELEMETRY_PONG_CAPACITY
TELEMETRY_BUFFER_CAPACITY = 20_000_000
#: Clock-sync rounds addressable per peer within the ping/pong blocks.
TELEMETRY_SYNC_MAX_ROUNDS = 1_024

# -- dissemination barrier (repro.comm.communicator) ------------------------
BARRIER_TAG_BASE = 1_000_000_000
#: Tags reserved per barrier epoch (one per dissemination round; 64 rounds
#: covers any world size below 2^64).
BARRIER_TAGS_PER_EPOCH = 64

# -- synchronous collectives (repro.collectives.sync) -----------------------
SYNC_TAG_BASE = 2_000_000_000
#: Pipeline segments addressable within one round.
SYNC_MAX_CHUNKS = 4_096
#: Rounds addressable within one phase (supports ring worlds to P = 2^17).
SYNC_MAX_ROUNDS = 1 << 17
#: Algorithm phases addressable within one epoch.
SYNC_MAX_PHASES = 16
#: Tag stride between consecutive rounds (one slot per pipeline chunk).
SYNC_ROUND_STRIDE = SYNC_MAX_CHUNKS
#: Tag stride between consecutive phases.
SYNC_PHASE_STRIDE = SYNC_MAX_ROUNDS * SYNC_ROUND_STRIDE
#: Tag stride reserved per collective invocation (epoch).
SYNC_EPOCH_STRIDE = SYNC_MAX_PHASES * SYNC_PHASE_STRIDE
#: Collective invocations addressable per communicator.  2^29 epochs keep
#: the largest sync tag below 2^63, so tags stay exact in the int64/u64
#: headers of the framing transports; at one collective per millisecond
#: that is ~17 years of uptime before the (loud) overflow error.
SYNC_MAX_EPOCHS = 1 << 29

# -- sharded-optimizer collectives (repro.collectives.sharding) --------------
#: The sharding region sits directly above the sync region: the free
#: [500M, 1e9) gap below the barrier is far too small for an epoch-strided
#: layout, and stacking keeps the whole reserved space contiguous.
SHARDING_TAG_BASE = SYNC_TAG_BASE + SYNC_MAX_EPOCHS * SYNC_EPOCH_STRIDE
#: Pipeline segments addressable within one round.
SHARDING_MAX_CHUNKS = 4_096
#: Rounds addressable within one phase (ring worlds to P = 2^16; half the
#: sync budget, traded for a full 16-phase namespace so the hierarchical
#: reduce-scatter/allgather schedules fit while the region top stays
#: below 2^63).
SHARDING_MAX_ROUNDS = 1 << 16
#: Algorithm phases addressable within one epoch.
SHARDING_MAX_PHASES = 16
#: Tag stride between consecutive rounds (one slot per pipeline chunk).
SHARDING_ROUND_STRIDE = SHARDING_MAX_CHUNKS
#: Tag stride between consecutive phases.
SHARDING_PHASE_STRIDE = SHARDING_MAX_ROUNDS * SHARDING_ROUND_STRIDE
#: Tag stride reserved per collective invocation (epoch).
SHARDING_EPOCH_STRIDE = SHARDING_MAX_PHASES * SHARDING_PHASE_STRIDE
#: Collective invocations addressable per communicator.  The region spans
#: 2^61 tags, so its top (base + 2^61 < 2^63) stays exact in the
#: int64/u64 headers of the framing transports.
SHARDING_MAX_EPOCHS = 1 << 29

SOLO_ACTIVATION = TagRegion(
    "solo-activation",
    SOLO_ACTIVATION_TAG_BASE,
    SOLO_REDUCTION_TAG_BASE,
    "activation messages of the persistent solo/majority schedules",
)
SOLO_REDUCTION = TagRegion(
    "solo-reduction",
    SOLO_REDUCTION_TAG_BASE,
    PARTIAL_ACTIVATION_TAG_BASE,
    "recursive-doubling rounds of the persistent solo/majority schedules",
)
PARTIAL_ACTIVATION = TagRegion(
    "partial-activation",
    PARTIAL_ACTIVATION_TAG_BASE,
    PARTIAL_ARRIVAL_TAG_BASE,
    "dissemination-broadcast activations of the partial collectives",
)
PARTIAL_ARRIVAL = TagRegion(
    "partial-arrival",
    PARTIAL_ARRIVAL_TAG_BASE,
    300_000_000,
    "quorum arrival notifications of the partial collectives",
)
SERVING = TagRegion(
    "serving",
    SERVING_TAG_BASE,
    SERVING_CONTROL_TAG_BASE + SERVING_CONTROL_CAPACITY,
    "serving tier: inference requests/responses, weight hot-swap, control",
)
TELEMETRY = TagRegion(
    "telemetry",
    TELEMETRY_TAG_BASE,
    TELEMETRY_BUFFER_TAG_BASE + TELEMETRY_BUFFER_CAPACITY,
    "telemetry: clock-sync ping/pong, trace-buffer shipment to rank 0",
)
BARRIER = TagRegion(
    "barrier",
    BARRIER_TAG_BASE,
    SYNC_TAG_BASE,
    "dissemination-barrier token exchange",
)
SYNC = TagRegion(
    "sync-collectives",
    SYNC_TAG_BASE,
    SYNC_TAG_BASE + SYNC_MAX_EPOCHS * SYNC_EPOCH_STRIDE,
    "synchronous collectives: (epoch, phase, round, chunk) layout",
)
SHARDING = TagRegion(
    "sharding",
    SHARDING_TAG_BASE,
    SHARDING_TAG_BASE + SHARDING_MAX_EPOCHS * SHARDING_EPOCH_STRIDE,
    "sharded-optimizer collectives: reduce-scatter / allgather-flat, "
    "(epoch, phase, round, chunk) layout",
)

#: Every reserved region, in ascending order of base.  ``[0, 10_000_000)``
#: is deliberately absent: it is free for application-level tags.
TAG_REGIONS: Tuple[TagRegion, ...] = (
    SOLO_ACTIVATION,
    SOLO_REDUCTION,
    PARTIAL_ACTIVATION,
    PARTIAL_ARRIVAL,
    SERVING,
    TELEMETRY,
    BARRIER,
    SYNC,
    SHARDING,
)


def region(name: str) -> TagRegion:
    """Look up a region by name."""
    for reg in TAG_REGIONS:
        if reg.name == name:
            return reg
    raise KeyError(f"unknown tag region {name!r}; known: "
                   f"{[r.name for r in TAG_REGIONS]}")


def region_of(tag: int) -> Optional[TagRegion]:
    """The reserved region containing ``tag``, or ``None`` (user space)."""
    for reg in TAG_REGIONS:
        if tag in reg:
            return reg
    return None


def check_region_disjointness() -> None:
    """Prove the region table is well-formed and pairwise disjoint.

    Raises :class:`ValueError` on any malformed or overlapping pair; runs
    at import time so a bad edit to the table can never ship silently.
    """
    for reg in TAG_REGIONS:
        if reg.lo < 0 or reg.hi <= reg.lo:
            raise ValueError(
                f"malformed tag region {reg.name!r}: [{reg.lo}, {reg.hi})"
            )
    ordered = sorted(TAG_REGIONS, key=lambda r: r.lo)
    for a, b in zip(ordered, ordered[1:]):
        if b.lo < a.hi:
            raise ValueError(
                f"tag regions {a.name!r} [{a.lo}, {a.hi}) and "
                f"{b.name!r} [{b.lo}, {b.hi}) overlap"
            )


# ---------------------------------------------------------------------------
# tag minting helpers (each refuses to leave its region)
# ---------------------------------------------------------------------------
class SyncTagFields(NamedTuple):
    """Decoded ``(epoch, phase, round, chunk)`` fields of a sync tag."""

    epoch: int
    phase: int
    round_index: int
    chunk: int


def sync_tag(epoch: int, phase: int, round_index: int, chunk: int = 0) -> int:
    """Tag of pipeline segment ``chunk`` of ``round_index`` in ``phase``.

    Raises :class:`ValueError` when any field — including ``epoch`` —
    overflows its stride: an overflow would alias another phase/epoch's
    messages (the tag-collision bug this layout replaces), so it must
    never be silent.
    """
    if not 0 <= epoch < SYNC_MAX_EPOCHS:
        raise ValueError(
            f"collective epoch {epoch} outside [0, {SYNC_MAX_EPOCHS}); "
            f"the per-communicator collective counter overflowed its tag field"
        )
    if not 0 <= phase < SYNC_MAX_PHASES:
        raise ValueError(f"collective phase {phase} outside [0, {SYNC_MAX_PHASES})")
    if not 0 <= round_index < SYNC_MAX_ROUNDS:
        raise ValueError(
            f"collective round {round_index} outside [0, {SYNC_MAX_ROUNDS}); "
            f"world size exceeds the tag layout's round capacity"
        )
    if not 0 <= chunk < SYNC_MAX_CHUNKS:
        raise ValueError(f"pipeline chunk {chunk} outside [0, {SYNC_MAX_CHUNKS})")
    return (
        SYNC_TAG_BASE
        + epoch * SYNC_EPOCH_STRIDE
        + phase * SYNC_PHASE_STRIDE
        + round_index * SYNC_ROUND_STRIDE
        + chunk
    )


def decode_sync_tag(tag: int) -> SyncTagFields:
    """Invert :func:`sync_tag`; raises if ``tag`` is not a sync tag."""
    SYNC.check(tag, "sync-collective")
    offset = tag - SYNC_TAG_BASE
    epoch, rest = divmod(offset, SYNC_EPOCH_STRIDE)
    phase, rest = divmod(rest, SYNC_PHASE_STRIDE)
    round_index, chunk = divmod(rest, SYNC_ROUND_STRIDE)
    return SyncTagFields(epoch, phase, round_index, chunk)


class ShardingTagFields(NamedTuple):
    """Decoded ``(epoch, phase, round, chunk)`` fields of a sharding tag."""

    epoch: int
    phase: int
    round_index: int
    chunk: int


def sharding_tag(epoch: int, phase: int, round_index: int, chunk: int = 0) -> int:
    """Tag of pipeline segment ``chunk`` of ``round_index`` in ``phase``
    of the sharded-optimizer collectives (reduce-scatter/allgather-flat).

    Same contract as :func:`sync_tag`: any overflowing field — including
    ``epoch`` — raises instead of silently aliasing a neighbour's messages.
    """
    if not 0 <= epoch < SHARDING_MAX_EPOCHS:
        raise ValueError(
            f"sharding epoch {epoch} outside [0, {SHARDING_MAX_EPOCHS}); "
            f"the per-communicator sharding-collective counter overflowed "
            f"its tag field"
        )
    if not 0 <= phase < SHARDING_MAX_PHASES:
        raise ValueError(
            f"sharding phase {phase} outside [0, {SHARDING_MAX_PHASES})"
        )
    if not 0 <= round_index < SHARDING_MAX_ROUNDS:
        raise ValueError(
            f"sharding round {round_index} outside [0, {SHARDING_MAX_ROUNDS}); "
            f"world size exceeds the tag layout's round capacity"
        )
    if not 0 <= chunk < SHARDING_MAX_CHUNKS:
        raise ValueError(
            f"sharding pipeline chunk {chunk} outside [0, {SHARDING_MAX_CHUNKS})"
        )
    return (
        SHARDING_TAG_BASE
        + epoch * SHARDING_EPOCH_STRIDE
        + phase * SHARDING_PHASE_STRIDE
        + round_index * SHARDING_ROUND_STRIDE
        + chunk
    )


def decode_sharding_tag(tag: int) -> ShardingTagFields:
    """Invert :func:`sharding_tag`; raises if ``tag`` is not a sharding tag."""
    SHARDING.check(tag, "sharding-collective")
    offset = tag - SHARDING_TAG_BASE
    epoch, rest = divmod(offset, SHARDING_EPOCH_STRIDE)
    phase, rest = divmod(rest, SHARDING_PHASE_STRIDE)
    round_index, chunk = divmod(rest, SHARDING_ROUND_STRIDE)
    return ShardingTagFields(epoch, phase, round_index, chunk)


def partial_activation_tag(round_index: int) -> int:
    """Activation tag of partial-collective round ``round_index``."""
    if round_index < 0:
        raise ValueError(f"partial-collective round must be >= 0, got {round_index}")
    return PARTIAL_ACTIVATION.check(
        PARTIAL_ACTIVATION_TAG_BASE + round_index, "partial-activation"
    )


def partial_arrival_tag(round_index: int) -> int:
    """Quorum-arrival tag of partial-collective round ``round_index``."""
    if round_index < 0:
        raise ValueError(f"partial-collective round must be >= 0, got {round_index}")
    return PARTIAL_ARRIVAL.check(
        PARTIAL_ARRIVAL_TAG_BASE + round_index, "partial-arrival"
    )


def serving_request_tag(batch_seq: int) -> int:
    """Tag of inference batch request ``batch_seq`` (frontend -> replica).

    Unlike the collective layouts, serving tags *recycle* their slot block
    modulo the capacity: the frontend pairs a response with its request by
    the batch sequence number carried in the payload (not by tag), so tag
    aliasing is only possible with more than ``SERVING_REQUEST_CAPACITY``
    batches simultaneously in flight — far above any admissible queue
    depth.  The tag identifies the message *kind* for mailbox matching and
    for the static schedule verifier's region-soundness check.
    """
    if batch_seq < 0:
        raise ValueError(f"serving batch sequence must be >= 0, got {batch_seq}")
    return SERVING.check(
        SERVING_REQUEST_TAG_BASE + batch_seq % SERVING_REQUEST_CAPACITY,
        "serving-request",
    )


def serving_response_tag(batch_seq: int) -> int:
    """Tag of the response to batch ``batch_seq`` (replica -> frontend)."""
    if batch_seq < 0:
        raise ValueError(f"serving batch sequence must be >= 0, got {batch_seq}")
    return SERVING.check(
        SERVING_RESPONSE_TAG_BASE + batch_seq % SERVING_RESPONSE_CAPACITY,
        "serving-response",
    )


def serving_swap_tag(version: int) -> int:
    """Tag of weight payload / announcement for model ``version``.

    Slots recycle modulo the capacity (see :func:`serving_request_tag`);
    subscribers order swaps by the monotonic version number carried in the
    payload, so a recycled tag can never roll a replica backwards.
    """
    if version < 0:
        raise ValueError(f"serving model version must be >= 0, got {version}")
    return SERVING.check(
        SERVING_SWAP_TAG_BASE + version % SERVING_SWAP_CAPACITY,
        "serving-swap",
    )


def serving_control_tag(kind: int) -> int:
    """Tag of serving control message kind ``kind`` (stop, health, ...)."""
    if not 0 <= kind < SERVING_CONTROL_CAPACITY:
        raise ValueError(
            f"serving control kind {kind} outside [0, {SERVING_CONTROL_CAPACITY})"
        )
    return SERVING.check(SERVING_CONTROL_TAG_BASE + kind, "serving-control")


def _telemetry_sync_slot(peer: int, round_index: int, capacity: int, what: str) -> int:
    """Slot of clock-sync round ``round_index`` with ``peer`` (strided
    layout: ``peer * TELEMETRY_SYNC_MAX_ROUNDS + round_index``)."""
    if peer <= 0:
        raise ValueError(
            f"{what} peer must be a non-zero rank (rank 0 drives the "
            f"estimation), got {peer}"
        )
    if not 0 <= round_index < TELEMETRY_SYNC_MAX_ROUNDS:
        raise ValueError(
            f"{what} round {round_index} outside [0, {TELEMETRY_SYNC_MAX_ROUNDS})"
        )
    slot = peer * TELEMETRY_SYNC_MAX_ROUNDS + round_index
    if slot >= capacity:
        raise ValueError(
            f"{what} peer {peer} overflows the telemetry clock-sync block "
            f"(capacity {capacity} slots at {TELEMETRY_SYNC_MAX_ROUNDS} "
            f"rounds per peer)"
        )
    return slot


def telemetry_ping_tag(peer: int, round_index: int) -> int:
    """Tag of clock-sync ping ``round_index``, rank 0 -> ``peer``."""
    slot = _telemetry_sync_slot(
        peer, round_index, TELEMETRY_PING_CAPACITY, "telemetry-ping"
    )
    return TELEMETRY.check(TELEMETRY_PING_TAG_BASE + slot, "telemetry-ping")


def telemetry_pong_tag(peer: int, round_index: int) -> int:
    """Tag of clock-sync pong ``round_index``, ``peer`` -> rank 0."""
    slot = _telemetry_sync_slot(
        peer, round_index, TELEMETRY_PONG_CAPACITY, "telemetry-pong"
    )
    return TELEMETRY.check(TELEMETRY_PONG_TAG_BASE + slot, "telemetry-pong")


def telemetry_buffer_tag(rank: int) -> int:
    """Tag of rank ``rank``'s trace-buffer shipment to rank 0."""
    if not 0 < rank < TELEMETRY_BUFFER_CAPACITY:
        raise ValueError(
            f"telemetry buffer rank {rank} outside "
            f"(0, {TELEMETRY_BUFFER_CAPACITY}) — rank 0 collects, it never ships"
        )
    return TELEMETRY.check(TELEMETRY_BUFFER_TAG_BASE + rank, "telemetry-buffer")


def barrier_tag(epoch: int, round_index: int) -> int:
    """Tag of dissemination-barrier round ``round_index`` in ``epoch``."""
    if round_index < 0 or round_index >= BARRIER_TAGS_PER_EPOCH:
        raise ValueError(
            f"barrier round {round_index} outside [0, {BARRIER_TAGS_PER_EPOCH})"
        )
    max_epochs = BARRIER.span // BARRIER_TAGS_PER_EPOCH
    if not 0 <= epoch < max_epochs:
        raise ValueError(
            f"barrier epoch {epoch} outside [0, {max_epochs}); "
            f"the per-communicator barrier counter overflowed its tag region"
        )
    return BARRIER.check(
        BARRIER_TAG_BASE + epoch * BARRIER_TAGS_PER_EPOCH + round_index, "barrier"
    )


def solo_activation_tag(round_index: int,
                        tags_per_round: int = SOLO_TAGS_PER_ROUND) -> int:
    """Activation tag of persistent-schedule round ``round_index``."""
    if round_index < 0:
        raise ValueError(f"schedule round must be >= 0, got {round_index}")
    return SOLO_ACTIVATION.check(
        SOLO_ACTIVATION_TAG_BASE + round_index * tags_per_round, "solo-activation"
    )


def solo_reduction_tag_base(round_index: int,
                            tags_per_round: int = SOLO_TAGS_PER_ROUND) -> int:
    """Base tag of the reduction rounds of persistent-schedule round
    ``round_index``; the schedule adds ``1 + k`` for doubling round ``k``,
    which stays inside the round's ``tags_per_round`` slot block."""
    if round_index < 0:
        raise ValueError(f"schedule round must be >= 0, got {round_index}")
    base = SOLO_REDUCTION_TAG_BASE + round_index * tags_per_round
    SOLO_REDUCTION.check(base, "solo-reduction")
    SOLO_REDUCTION.check(base + tags_per_round - 1, "solo-reduction")
    return base


# Prove the table is sound before anyone mints a tag from it.
check_region_disjointness()
