"""Vectorised reduction kernels for narrow float dtypes.

NumPy has no SIMD arithmetic loops for ``float16``: an in-place
``np.add(a, b, out=a)`` on two half-precision buffers runs an
element-at-a-time C loop that converts each operand to ``float32``,
combines, and converts back — roughly an order of magnitude slower per
byte than the vectorised ``float32`` loop.  Gradients increasingly
travel at narrow widths (the ``fp16`` wire format of
:mod:`repro.compression`, user data handed to the generic collectives),
so that scalar loop sits directly on the reduction hot path.

This module supplies the *widen-accumulate-narrow* kernels that replace
it, selected **by dtype at call time** so callers never special-case:

``combine_into(ufunc, out, other)``
    One fused binary combine: the ufunc runs its ``float32`` loop with
    buffered input casts (``dtype=float32``) into a wide scratch, and a
    single vectorised narrowing store writes the result back.  For
    ``add`` / ``multiply`` / ``maximum`` / ``minimum`` on ``float16``
    this is **bit-identical** to NumPy's native half loop (both round
    the exact ``float32`` result to nearest-even, and 24 significand
    bits make the double rounding innocuous for 11-bit operands) while
    skipping the per-element scalar conversions.

:class:`WidenedAccumulator`
    The multi-segment form: widen the accumulator to ``float32`` once,
    fold any number of narrow segments in at vector speed (one fused
    cast-and-combine per segment), and narrow once at the end.  This is
    where the big wins live — a tree reduce combining ``P - 1`` child
    contributions pays one narrowing instead of ``P - 1``.  Accumulating
    in ``float32`` is *more* accurate than stepwise ``float16``
    arithmetic but not bit-identical to it; use it only where no
    bit-agreement contract with a stepwise peer exists (reductions with
    a single owner, local accumulation), never to replace one side of a
    symmetric exchange.

``bf16_widen`` / ``bf16_narrow``
    The bfloat16 wire transforms (``uint16`` bit patterns, round to
    nearest even) as pure vectorised integer/float32 ops — shared by
    :class:`repro.compression.codecs.Bf16Codec` and anything else that
    touches bf16 payloads, so the bit layout is defined exactly once.

``accumulate_wire(acc, wire)``
    Decode-and-add of a narrow float wire payload into a wide dense
    accumulator as one fused ufunc call (``acc += wire`` with the cast
    buffered inside the loop) — the per-hop kernel of the compressed
    ring (:func:`repro.collectives.sync.allreduce_compressed_ring`),
    replacing decode-to-float64-then-add.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

__all__ = [
    "WidenedAccumulator",
    "accumulate_wire",
    "accumulator",
    "bf16_narrow",
    "bf16_widen",
    "combine_into",
    "reduce_segments",
    "widened_dtype",
]

#: Narrow float dtypes and the accumulation width their kernels use.
_WIDEN = {np.dtype(np.float16): np.dtype(np.float32)}


def widened_dtype(dtype) -> Optional[np.dtype]:
    """Accumulation dtype of a narrow float dtype (``None`` = no kernel).

    ``float16`` widens to ``float32``; every other dtype already has
    vectorised NumPy loops and returns ``None`` so callers fall through
    to the plain in-place ufunc.
    """
    return _WIDEN.get(np.dtype(dtype))


def combine_into(ufunc: np.ufunc, out: np.ndarray, other) -> bool:
    """Vectorised ``out <- ufunc(out, other)`` for narrow ``out`` dtypes.

    Returns ``True`` when a kernel handled the combine, ``False`` when
    the caller should fall back to the plain in-place ufunc (wide
    dtypes, mismatched operand dtypes, non-ufunc operators).  The
    result is bit-identical to the fallback: the ufunc's ``float32``
    loop computes the exact single-op result NumPy's scalar half loop
    would, and the narrowing store rounds it to nearest-even once.
    """
    wide = _WIDEN.get(out.dtype)
    if wide is None or not isinstance(ufunc, np.ufunc):
        return False
    other = np.asarray(other)
    if other.dtype != out.dtype:
        # Mixed-width combines keep the fallback's promotion semantics
        # (e.g. float64 contributions must not be squeezed through
        # float32 on the way into a float16 buffer).
        return False
    scratch = np.empty(out.shape, dtype=wide)
    ufunc(out, other, out=scratch, dtype=wide)
    np.copyto(out, scratch, casting="same_kind")
    return True


class WidenedAccumulator:
    """Accumulate narrow-dtype segments at wide-dtype vector speed.

    Widen ``out`` once, :meth:`combine` any number of equally-shaped
    narrow segments (each a single fused cast-and-combine ufunc call),
    then :meth:`finish` to narrow the wide accumulator back into
    ``out`` with one vectorised store.

    The accumulation runs entirely in the wide dtype, so the result is
    at least as accurate as — but not bit-identical to — the stepwise
    narrow arithmetic it replaces.
    """

    def __init__(self, ufunc: np.ufunc, out: np.ndarray, wide: np.dtype) -> None:
        self._ufunc = ufunc
        self._out = out
        self._acc = np.empty(out.shape, dtype=wide)
        np.copyto(self._acc, out, casting="safe")

    def combine(self, other) -> None:
        """Fold one narrow segment into the wide accumulator in place.

        A contribution *wider* than the accumulator dtype (e.g. a
        float64 array folded into a float16 reduction) is combined at
        its own precision instead — squeezing it through float32 would
        double-round where the stepwise fallback computes wide and
        narrows once.
        """
        other = np.asarray(other)
        if other.dtype.itemsize > self._acc.dtype.itemsize:
            self._acc = self._ufunc(self._acc, other)
        else:
            self._ufunc(self._acc, other, out=self._acc)

    def finish(self) -> np.ndarray:
        """Narrow the accumulator back into ``out`` and return it."""
        np.copyto(self._out, self._acc, casting="same_kind")
        return self._out



def accumulator(ufunc, out: np.ndarray) -> Optional[WidenedAccumulator]:
    """A :class:`WidenedAccumulator` over ``out``, or ``None``.

    ``None`` means no vectorised path applies (wide dtype, or the
    operator has no ufunc) and the caller should combine stepwise.
    """
    if not isinstance(ufunc, np.ufunc) or not isinstance(out, np.ndarray):
        return None
    wide = _WIDEN.get(out.dtype)
    if wide is None:
        return None
    return WidenedAccumulator(ufunc, out, wide)


def reduce_segments(ufunc: np.ufunc, out: np.ndarray, segments: Sequence) -> np.ndarray:
    """Fold ``segments`` into ``out`` in order: ``out <- f(...f(out, s0)...)``.

    Dispatches by dtype at call time: narrow ``out`` buffers take the
    widen-accumulate-narrow path (one narrowing total), wide ones the
    plain in-place ufunc per segment.  This is the kernel the transport
    benchmark (``benchmarks/bench_backend_transports.py``) measures.
    """
    acc = accumulator(ufunc, out)
    if acc is None:
        for segment in segments:
            ufunc(out, segment, out=out)
        return out
    for segment in segments:
        acc.combine(segment)
    return acc.finish()


# ---------------------------------------------------------------------------
# bfloat16 wire transforms
# ---------------------------------------------------------------------------
def bf16_widen(bits, dtype=np.float32) -> np.ndarray:
    """Decode bfloat16 bit patterns (``uint16``) to a float array.

    Pure vectorised integer ops: the 16 wire bits are the upper half of
    the IEEE float32 representation, so widening is a shift and a view.
    """
    bits = np.asarray(bits, dtype=np.uint16)
    wide = bits.astype(np.uint32) << np.uint32(16)
    values = wide.view(np.float32)
    if np.dtype(dtype) == np.float32:
        return values
    return values.astype(dtype)


def bf16_narrow(values) -> np.ndarray:
    """Encode a float array as bfloat16 bit patterns (``uint16``, RNE).

    Round-to-nearest-even before truncating the low mantissa bits —
    the wire format of :class:`repro.compression.codecs.Bf16Codec`.
    """
    bits = np.asarray(values, dtype=np.float32).view(np.uint32)
    rounding = ((bits >> np.uint32(16)) & np.uint32(1)) + np.uint32(0x7FFF)
    return ((bits + rounding) >> np.uint32(16)).astype(np.uint16)


# ---------------------------------------------------------------------------
# compressed-ring hop kernel
# ---------------------------------------------------------------------------
def accumulate_wire(acc: np.ndarray, wire: np.ndarray) -> bool:
    """``acc += wire`` with the widening cast fused into the add loop.

    ``acc`` is a wide dense accumulator (a float64 slice of the ring's
    working buffer), ``wire`` a narrow *float* wire payload (fp16).  The
    fused mixed-dtype ufunc call skips the intermediate wide copy that
    ``acc += wire.astype(acc.dtype)`` would allocate and fill.  Returns
    ``False`` (caller decodes via the codec) for non-float wire dtypes,
    whose payloads are bit patterns rather than values.
    """
    wire = np.asarray(wire)
    if not np.issubdtype(wire.dtype, np.floating):
        return False
    np.add(acc, wire, out=acc)
    return True
