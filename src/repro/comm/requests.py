"""Nonblocking communication requests (``isend`` / ``irecv``).

The thread transport delivers sends eagerly (a send never blocks), so a
:class:`SendRequest` is complete upon creation.  A :class:`RecvRequest`
wraps a deferred matching receive and supports ``test`` / ``wait`` in the
style of ``mpi4py`` requests, which the schedule engine and the
non-blocking synchronous-SGD variant build upon.
"""

from __future__ import annotations

import threading
from typing import Any, List, Optional

from repro.comm.mailbox import Mailbox
from repro.comm.message import ANY_SOURCE, ANY_TAG, Message


class Request:
    """Base class for nonblocking communication requests."""

    def test(self) -> bool:
        """Return ``True`` if the operation has completed (non-blocking)."""
        raise NotImplementedError

    def wait(self, timeout: Optional[float] = None) -> Any:
        """Block until the operation completes and return its result."""
        raise NotImplementedError

    @staticmethod
    def wait_all(requests: List["Request"], timeout: Optional[float] = None) -> List[Any]:
        """Wait for every request, returning their results in order."""
        return [r.wait(timeout=timeout) for r in requests]


class SendRequest(Request):
    """A completed send (the eager transport copies on send)."""

    def __init__(self, message: Message) -> None:
        self.message = message

    def test(self) -> bool:
        return True

    def wait(self, timeout: Optional[float] = None) -> None:
        return None


class RecvRequest(Request):
    """A pending receive matched lazily against the owner's mailbox."""

    def __init__(
        self,
        mailbox: Mailbox,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
    ) -> None:
        self._mailbox = mailbox
        self._source = source
        self._tag = tag
        self._result: Optional[Message] = None
        self._lock = threading.Lock()

    def test(self) -> bool:
        with self._lock:
            if self._result is not None:
                return True
            msg = self._mailbox.poll(self._source, self._tag)
            if msg is not None:
                self._result = msg
                return True
            return False

    def wait(self, timeout: Optional[float] = None) -> Any:
        with self._lock:
            if self._result is None:
                self._result = self._mailbox.get(self._source, self._tag, timeout=timeout)
            return self._result.payload

    @property
    def message(self) -> Optional[Message]:
        """The matched message, or ``None`` if not yet completed."""
        with self._lock:
            return self._result
