"""Per-rank communicator handle.

A :class:`Communicator` binds a rank to a channel of the
:class:`~repro.comm.router.Router` and exposes MPI-like point-to-point
primitives.  Collective operations are layered on top of it in
:mod:`repro.collectives`.
"""

from __future__ import annotations

import copy
from typing import Any, Optional

import numpy as np

from repro.comm import tags
from repro.comm.message import ANY_SOURCE, ANY_TAG, Message
from repro.comm.requests import RecvRequest, Request, SendRequest
from repro.comm.router import Channel, Router
from repro.obs import recorder as _obs


class CommTimeoutError(TimeoutError):
    """A blocking receive or barrier exceeded its timeout."""


#: Default timeout, in seconds, for blocking receives issued by the
#: library.  Distributed-training deadlocks otherwise hang the test suite;
#: a generous-but-finite timeout converts them into actionable errors.
DEFAULT_TIMEOUT = 120.0

# Reserved tag space for the dissemination barrier (from the global
# tag-region map; alias kept for existing callers).
_BARRIER_TAG_BASE = tags.BARRIER_TAG_BASE


class Communicator:
    """MPI-like communicator for one rank on one channel.

    Parameters
    ----------
    router:
        The shared in-process router.
    rank:
        This endpoint's rank in ``[0, world_size)``.
    channel:
        Router channel carrying this communicator's traffic.
    default_timeout:
        Timeout applied to blocking receives when the caller does not
        specify one.  ``None`` disables the safety timeout.
    """

    def __init__(
        self,
        router: Router,
        rank: int,
        channel: str = Channel.APP,
        default_timeout: Optional[float] = DEFAULT_TIMEOUT,
    ) -> None:
        self._router = router
        self._rank = int(rank)
        self._channel = channel
        self._mailbox = router.mailbox(rank, channel)
        self.default_timeout = default_timeout
        self._barrier_epoch = 0

    # -------------------------------------------------------------- meta
    @property
    def rank(self) -> int:
        """This endpoint's rank."""
        return self._rank

    @property
    def size(self) -> int:
        """World size."""
        return self._router.world_size

    @property
    def channel(self) -> str:
        """Channel name this communicator uses."""
        return self._channel

    @property
    def router(self) -> Router:
        """The underlying router (shared by all communicators)."""
        return self._router

    def dup(self, channel: Optional[str] = None) -> "Communicator":
        """Return a communicator for the same rank on another channel."""
        return Communicator(
            self._router,
            self._rank,
            channel=channel or self._channel,
            default_timeout=self.default_timeout,
        )

    # ----------------------------------------------------------- p2p send
    @staticmethod
    def _copy_payload(payload: Any) -> Any:
        if isinstance(payload, np.ndarray):
            return payload.copy()
        # Small control payloads (ints, tuples, dataclasses); deep-copy so
        # the receiver can never observe sender-side mutation.
        return copy.deepcopy(payload)

    def _outgoing(self, payload: Any, dest: int) -> Any:
        """The payload object a send may enqueue for ``dest``.

        Local delivery shares the object with the receiver's mailbox, so
        it must be copied.  Transports that *frame* remote payloads
        synchronously inside ``deliver`` (the socket and shared-memory
        meshes: the bytes are on the wire before the send returns)
        advertise ``remote_payloads_framed`` and skip the defensive copy
        for remote destinations — on a 4 MB gradient that is one full
        memory pass per hop.
        """
        if dest != self._rank and getattr(self._router, "remote_payloads_framed", False):
            return payload
        return self._copy_payload(payload)

    def send(self, payload: Any, dest: int, tag: int = 0) -> None:
        """Eager blocking send (copies/frames and enqueues)."""
        dest = int(dest)
        msg = Message(
            source=self._rank, dest=dest, tag=int(tag),
            payload=self._outgoing(payload, dest),
        )
        rec = _obs.current()
        if rec is None:
            self._router.deliver(msg, self._channel)
        else:
            t0 = _obs.perf_counter_ns()
            self._router.deliver(msg, self._channel)
            _obs.record_send(
                rec, self._channel, self._rank, dest, msg.tag,
                _obs.payload_nbytes(payload), t0,
            )

    def isend(self, payload: Any, dest: int, tag: int = 0) -> Request:
        """Nonblocking send; the returned request is already complete."""
        dest = int(dest)
        msg = Message(
            source=self._rank, dest=dest, tag=int(tag),
            payload=self._outgoing(payload, dest),
        )
        rec = _obs.current()
        if rec is None:
            self._router.deliver(msg, self._channel)
        else:
            t0 = _obs.perf_counter_ns()
            self._router.deliver(msg, self._channel)
            _obs.record_send(
                rec, self._channel, self._rank, dest, msg.tag,
                _obs.payload_nbytes(payload), t0,
            )
        return SendRequest(msg)

    # ----------------------------------------------------------- p2p recv
    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        timeout: Optional[float] = None,
    ) -> Any:
        """Blocking receive; returns the payload."""
        return self.recv_message(source, tag, timeout=timeout).payload

    def recv_message(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        timeout: Optional[float] = None,
    ) -> Message:
        """Blocking receive returning the full :class:`Message` envelope."""
        effective = self.default_timeout if timeout is None else timeout
        rec = _obs.current()
        try:
            if rec is None:
                return self._mailbox.get(source, tag, timeout=effective)
            t0 = _obs.perf_counter_ns()
            msg = self._mailbox.get(source, tag, timeout=effective)
            _obs.record_recv(
                rec, self._channel, msg.source, self._rank, msg.tag,
                _obs.payload_nbytes(msg.payload), t0,
            )
            return msg
        except TimeoutError as exc:
            raise CommTimeoutError(str(exc)) from exc

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> RecvRequest:
        """Nonblocking receive request."""
        return RecvRequest(self._mailbox, source, tag)

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> bool:
        """Whether a matching message is already queued."""
        return self._mailbox.probe(source, tag)

    def poll(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Optional[Any]:
        """Non-blocking receive; returns the payload or ``None``."""
        msg = self._mailbox.poll(source, tag)
        return None if msg is None else msg.payload

    # ------------------------------------------------------------ barrier
    def barrier(self, timeout: Optional[float] = None) -> None:
        """Dissemination barrier over all ranks of this channel.

        The dissemination algorithm completes in ``ceil(log2(P))`` rounds;
        each round ``k`` exchanges a token with the ranks at distance
        ``2**k``.  Tags are namespaced by a per-communicator barrier epoch
        so that back-to-back barriers cannot interfere.
        """
        size = self.size
        epoch = self._barrier_epoch
        self._barrier_epoch += 1
        if size == 1:
            return
        k = 0
        dist = 1
        while dist < size:
            dest = (self._rank + dist) % size
            src = (self._rank - dist) % size
            tag = tags.barrier_tag(epoch, k)
            self.send(("barrier", epoch, k), dest, tag=tag)
            self.recv(source=src, tag=tag, timeout=timeout)
            dist <<= 1
            k += 1

    # --------------------------------------------------------------- misc
    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Communicator(rank={self._rank}, size={self.size}, "
            f"channel={self._channel!r})"
        )
