"""Message envelope shared by every transport backend."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

#: Wildcard source rank, analogous to ``MPI.ANY_SOURCE``.
ANY_SOURCE = -1

#: Wildcard message tag, analogous to ``MPI.ANY_TAG``.
ANY_TAG = -1


@dataclass
class Message:
    """A single point-to-point message.

    Attributes
    ----------
    source:
        Rank of the sender.
    dest:
        Rank of the receiver.
    tag:
        Non-negative integer tag; receivers may match on a specific tag or
        on :data:`ANY_TAG`.
    payload:
        The data being transferred.  NumPy arrays are copied by the sender
        (see :meth:`repro.comm.communicator.Communicator.send`) so the
        receiver can never observe sender-side mutation, mimicking a real
        network transfer.
    seq:
        Monotonic per-sender sequence number, useful for debugging and
        for asserting FIFO ordering per ``(source, dest, tag)`` triple.
    """

    source: int
    dest: int
    tag: int
    payload: Any
    seq: int = 0

    def matches(self, source: int, tag: int) -> bool:
        """Whether this message matches a receive posted for ``(source, tag)``."""
        source_ok = source == ANY_SOURCE or source == self.source
        tag_ok = tag == ANY_TAG or tag == self.tag
        return source_ok and tag_ok

    def nbytes(self) -> int:
        """Approximate size of the payload in bytes (arrays only)."""
        if isinstance(self.payload, np.ndarray):
            return int(self.payload.nbytes)
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        desc = (
            f"ndarray{self.payload.shape}"
            if isinstance(self.payload, np.ndarray)
            else type(self.payload).__name__
        )
        return (
            f"Message(src={self.source}, dst={self.dest}, tag={self.tag}, "
            f"seq={self.seq}, payload={desc})"
        )
