"""Length bucketing for variable-length batches.

"As is standard in variable-length training, videos with similar lengths
are grouped into buckets for performance" (Section 2.1 of the paper).
Bucketing reduces padding waste *within* a batch but leaves the *across*
batch imbalance — long-video batches still take much longer than
short-video ones — which is precisely the imbalance eager-SGD targets.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

import numpy as np

from repro.utils.rng import SeedLike, seeded_rng


def bucket_by_length(
    lengths: Sequence[float],
    num_buckets: int = 8,
    boundaries: Optional[Sequence[float]] = None,
) -> List[np.ndarray]:
    """Group example indices into buckets of similar length.

    Parameters
    ----------
    lengths:
        Per-example lengths (frames, tokens).
    num_buckets:
        Number of quantile buckets when ``boundaries`` is not given.
    boundaries:
        Explicit right-open bucket boundaries; overrides ``num_buckets``.

    Returns
    -------
    list of arrays
        One index array per non-empty bucket, ordered by increasing length.
    """
    arr = np.asarray(lengths, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise ValueError("lengths must be a non-empty 1-D sequence")
    if boundaries is None:
        if num_buckets < 1:
            raise ValueError("num_buckets must be >= 1")
        quantiles = np.quantile(arr, np.linspace(0, 1, num_buckets + 1)[1:-1])
        boundaries = np.unique(quantiles)
    boundaries = np.asarray(sorted(boundaries), dtype=np.float64)
    assignments = np.searchsorted(boundaries, arr, side="right")
    buckets = []
    for b in range(len(boundaries) + 1):
        idx = np.nonzero(assignments == b)[0]
        if idx.size:
            buckets.append(idx)
    return buckets


class BucketBatchSampler:
    """Yields batches whose examples come from the same length bucket.

    Parameters
    ----------
    lengths:
        Per-example lengths.
    batch_size:
        Number of examples per batch.
    num_buckets:
        Number of quantile buckets.
    shuffle:
        Shuffle within buckets and shuffle the order of batches each epoch.
    drop_last:
        Drop incomplete trailing batches of each bucket.
    """

    def __init__(
        self,
        lengths: Sequence[float],
        batch_size: int,
        num_buckets: int = 8,
        shuffle: bool = True,
        drop_last: bool = False,
        seed: SeedLike = 0,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.lengths = np.asarray(lengths, dtype=np.float64)
        self.batch_size = int(batch_size)
        self.buckets = bucket_by_length(self.lengths, num_buckets=num_buckets)
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.seed = 0 if seed is None else int(seed)

    def epoch_batches(self, epoch: int = 0) -> Iterator[np.ndarray]:
        """Yield index arrays for one epoch."""
        rng = seeded_rng(self.seed + epoch)
        batches: List[np.ndarray] = []
        for bucket in self.buckets:
            order = rng.permutation(bucket) if self.shuffle else bucket
            for start in range(0, len(order), self.batch_size):
                chunk = order[start : start + self.batch_size]
                if len(chunk) < self.batch_size and self.drop_last:
                    continue
                batches.append(chunk)
        if self.shuffle:
            rng.shuffle(batches)
        yield from batches

    def __iter__(self) -> Iterator[np.ndarray]:
        return self.epoch_batches(0)

    def batch_lengths(self, epoch: int = 0) -> np.ndarray:
        """Total length of each batch (proxy for its compute cost)."""
        return np.array(
            [float(self.lengths[batch].sum()) for batch in self.epoch_batches(epoch)]
        )
