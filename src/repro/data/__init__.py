"""Synthetic datasets with the statistical structure of the paper's workloads.

The original evaluation uses CIFAR-10, ImageNet, UCF101 and WMT16.  Those
datasets (and the GPUs to train on them) are not available to the
reproduction, so this package generates synthetic stand-ins that preserve
the properties the paper actually measures:

* **hyperplane regression** — generated exactly as described in
  Section 6.2.1 (``y = a0*x0 + ... + a8191*x8191 + noise``);
* **image classification** (CIFAR-like / ImageNet-like) — Gaussian class
  clusters in pixel space: balanced per-batch cost, learnable by the small
  ResNets;
* **video sequences** (UCF101-like) — per-frame feature sequences whose
  length distribution matches Fig. 2a (29-1,776 frames, median 167); the
  length drives the LSTM's compute cost, reproducing the inherent
  imbalance of Fig. 2b;
* **sentences** (WMT-like) — variable-length token sequences for the
  Transformer workload of Fig. 3.
"""

from repro.data.loader import Dataset, ShardedLoader, Batch
from repro.data.hyperplane import HyperplaneDataset
from repro.data.synthetic_images import (
    ImageClassificationDataset,
    cifar10_like,
    imagenet_like,
)
from repro.data.ucf101 import VideoFeatureDataset, sample_video_lengths, UCF101_LENGTH_STATS
from repro.data.wmt import SentenceDataset, sample_sentence_lengths
from repro.data.bucketing import bucket_by_length, BucketBatchSampler

__all__ = [
    "Dataset",
    "ShardedLoader",
    "Batch",
    "HyperplaneDataset",
    "ImageClassificationDataset",
    "cifar10_like",
    "imagenet_like",
    "VideoFeatureDataset",
    "sample_video_lengths",
    "UCF101_LENGTH_STATS",
    "SentenceDataset",
    "sample_sentence_lengths",
    "bucket_by_length",
    "BucketBatchSampler",
]
