"""Hyperplane-regression dataset (Section 6.2.1 of the paper).

The paper generates training and validation data for an 8,192-dimensional
hyperplane ``y = a0*x0 + a1*x1 + ... + a8191*x8191 + noise`` and fits a
one-layer MLP to recover the coefficients.  The dataset here follows that
construction with configurable dimensionality and size so that tests use
tiny instances while the Fig. 10 benchmark uses the paper's shapes
(scaled as needed).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.data.loader import Batch, Dataset
from repro.utils.rng import SeedLike, seeded_rng


class HyperplaneDataset(Dataset):
    """Noisy samples from a random hyperplane.

    Parameters
    ----------
    num_examples:
        Number of samples (the paper uses 32,768 training points).
    input_dim:
        Dimensionality of the hyperplane (the paper uses 8,192).
    noise_std:
        Standard deviation of the additive label noise.
    coefficient_scale:
        The true coefficients are drawn uniformly from
        ``[-coefficient_scale, +coefficient_scale]``.
    """

    def __init__(
        self,
        num_examples: int = 32_768,
        input_dim: int = 8_192,
        noise_std: float = 1.0,
        coefficient_scale: float = 1.0,
        seed: SeedLike = None,
    ) -> None:
        if num_examples < 1 or input_dim < 1:
            raise ValueError("num_examples and input_dim must be positive")
        if noise_std < 0:
            raise ValueError("noise_std must be non-negative")
        rng = seeded_rng(seed)
        self.input_dim = int(input_dim)
        self.noise_std = float(noise_std)
        #: The ground-truth hyperplane coefficients the model should recover.
        self.coefficients = rng.uniform(-coefficient_scale, coefficient_scale, size=input_dim)
        self.intercept = float(rng.uniform(-coefficient_scale, coefficient_scale))
        # Inputs are kept small (standard normal / sqrt(dim)) so that the
        # labels have O(1) scale regardless of the dimensionality.
        self.x = rng.normal(0.0, 1.0 / np.sqrt(input_dim), size=(num_examples, input_dim))
        clean = self.x @ self.coefficients + self.intercept
        self.y = (clean + rng.normal(0.0, noise_std, size=num_examples))[:, None]

    def __len__(self) -> int:
        return self.x.shape[0]

    def get_batch(self, indices: Sequence[int]) -> Batch:
        idx = np.asarray(indices, dtype=np.int64)
        return Batch(inputs=self.x[idx], targets=self.y[idx], indices=idx)

    def split(self, validation_fraction: float = 0.2, seed: SeedLike = 0) -> Tuple["HyperplaneView", "HyperplaneView"]:
        """Split into train/validation views without copying the arrays."""
        if not 0.0 < validation_fraction < 1.0:
            raise ValueError("validation_fraction must be in (0, 1)")
        rng = seeded_rng(seed)
        perm = rng.permutation(len(self))
        n_val = int(len(self) * validation_fraction)
        return (
            HyperplaneView(self, perm[n_val:]),
            HyperplaneView(self, perm[:n_val]),
        )


class HyperplaneView(Dataset):
    """A subset view over a :class:`HyperplaneDataset` (train/val split)."""

    def __init__(self, base: HyperplaneDataset, indices: np.ndarray) -> None:
        self.base = base
        self.indices = np.asarray(indices, dtype=np.int64)

    def __len__(self) -> int:
        return int(self.indices.size)

    def get_batch(self, indices: Sequence[int]) -> Batch:
        idx = self.indices[np.asarray(indices, dtype=np.int64)]
        return Batch(inputs=self.base.x[idx], targets=self.base.y[idx], indices=idx)

    @property
    def x(self) -> np.ndarray:
        return self.base.x[self.indices]

    @property
    def y(self) -> np.ndarray:
        return self.base.y[self.indices]
