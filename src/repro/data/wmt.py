"""WMT-like synthetic sentence dataset (Section 2.2, Fig. 3).

Training a Transformer on WMT16 has a per-batch cost that grows with the
sentence length; the paper uses this as its second example of inherent
load imbalance.  The reproduction generates variable-length token
sequences whose lengths follow a long-tailed distribution, together with a
sequence-level label (each "language style" class biases the token
distribution) so the tiny Transformer classifier has something to learn.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.data.loader import Batch, Dataset
from repro.utils.rng import SeedLike, seeded_rng

#: Default length distribution parameters: median ~22 tokens with a long
#: tail, clipped to [4, 128] — a standard shape for WMT-style corpora.
DEFAULT_MEDIAN_TOKENS = 22.0
DEFAULT_SIGMA = 0.55
DEFAULT_MIN_TOKENS = 4
DEFAULT_MAX_TOKENS = 128


def sample_sentence_lengths(
    num_sentences: int,
    median_tokens: float = DEFAULT_MEDIAN_TOKENS,
    sigma: float = DEFAULT_SIGMA,
    min_tokens: int = DEFAULT_MIN_TOKENS,
    max_tokens: int = DEFAULT_MAX_TOKENS,
    seed: SeedLike = None,
) -> np.ndarray:
    """Sample sentence lengths from a clipped lognormal distribution."""
    if num_sentences < 1:
        raise ValueError("num_sentences must be positive")
    if min_tokens < 1 or max_tokens < min_tokens:
        raise ValueError("invalid token bounds")
    rng = seeded_rng(seed)
    raw = rng.lognormal(mean=math.log(median_tokens), sigma=sigma, size=num_sentences)
    return np.clip(np.round(raw), min_tokens, max_tokens).astype(np.int64)


class SentenceDataset(Dataset):
    """Variable-length token sequences with a sequence-level label.

    Parameters
    ----------
    num_sentences:
        Number of sentences.
    vocab_size:
        Token vocabulary size.
    num_classes:
        Number of sequence-level classes; each class prefers a different
        subset of the vocabulary so the label is learnable.
    max_tokens:
        Upper clip of the length distribution (also the model's
        ``max_len``).
    """

    def __init__(
        self,
        num_sentences: int = 2_000,
        vocab_size: int = 256,
        num_classes: int = 10,
        median_tokens: float = DEFAULT_MEDIAN_TOKENS,
        max_tokens: int = DEFAULT_MAX_TOKENS,
        seed: SeedLike = None,
    ) -> None:
        if vocab_size < num_classes:
            raise ValueError("vocab_size must be at least num_classes")
        rng = seeded_rng(seed)
        self.vocab_size = int(vocab_size)
        self.num_classes = int(num_classes)
        self.max_tokens = int(max_tokens)
        self.lengths = sample_sentence_lengths(
            num_sentences,
            median_tokens=median_tokens,
            max_tokens=max_tokens,
            seed=rng,
        )
        self.labels = rng.integers(0, num_classes, size=num_sentences)
        # Each class draws tokens preferentially from its own slice of the
        # vocabulary (mixed with uniform noise tokens).
        self._class_token_base = np.linspace(
            0, vocab_size, num_classes, endpoint=False
        ).astype(np.int64)
        self._slice_width = max(1, vocab_size // num_classes)
        self._sentence_seeds = rng.integers(0, 2**63 - 1, size=num_sentences)

    def __len__(self) -> int:
        return int(self.lengths.size)

    def example_sizes(self) -> np.ndarray:
        """Token count per sentence (drives the Transformer cost model)."""
        return self.lengths.copy()

    def _sentence_tokens(self, index: int) -> np.ndarray:
        rng = seeded_rng(int(self._sentence_seeds[index]))
        length = int(self.lengths[index])
        label = int(self.labels[index])
        base = self._class_token_base[label]
        in_class = base + rng.integers(0, self._slice_width, size=length)
        uniform = rng.integers(0, self.vocab_size, size=length)
        use_class = rng.random(length) < 0.7
        return np.where(use_class, in_class, uniform).astype(np.int64)

    def get_batch(self, indices: Sequence[int]) -> Batch:
        idx = np.asarray(indices, dtype=np.int64)
        lengths = self.lengths[idx]
        max_len = int(lengths.max())
        tokens = np.zeros((idx.size, max_len), dtype=np.int64)
        for row, sentence_index in enumerate(idx):
            seq = self._sentence_tokens(int(sentence_index))
            tokens[row, : seq.size] = seq
        return Batch(
            inputs={"tokens": tokens, "lengths": lengths},
            targets=self.labels[idx],
            indices=idx,
            size_hint=float(lengths.sum()),
        )
