"""Dataset protocol and the per-rank sharded loader.

Data-parallel SGD partitions every global batch across the ranks: with a
global batch size ``B`` and ``P`` processes, each rank processes ``B/P``
samples per step (Algorithm 2 uses the local batch size ``b``).  The
:class:`ShardedLoader` implements that partitioning deterministically so
all ranks agree on the global sample order while touching disjoint shards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Sequence

import numpy as np

from repro.utils.rng import SeedLike, rank_seed, seeded_rng


@dataclass
class Batch:
    """One batch of examples.

    Attributes
    ----------
    inputs:
        Model inputs: an array, or a dict of arrays for sequence models
        (``{"x": ..., "lengths": ...}`` / ``{"tokens": ..., "lengths": ...}``).
    targets:
        Regression targets or integer class labels.
    indices:
        Dataset indices of the examples in the batch.
    size_hint:
        Workload proxy for cost models (e.g. total number of frames or
        tokens in the batch); ``None`` for fixed-cost datasets.
    """

    inputs: Any
    targets: np.ndarray
    indices: np.ndarray
    size_hint: Optional[float] = None

    def __len__(self) -> int:
        return int(len(self.indices))


class Dataset:
    """Base class for synthetic datasets.

    Subclasses implement :meth:`__len__` and :meth:`get_batch`; datasets
    whose examples have a meaningful "length" (frames, tokens) also
    override :meth:`example_sizes` so that bucketing samplers and cost
    models can use it.
    """

    def __len__(self) -> int:
        raise NotImplementedError

    def get_batch(self, indices: Sequence[int]) -> Batch:
        raise NotImplementedError

    def example_sizes(self) -> Optional[np.ndarray]:
        """Per-example workload proxy (``None`` when cost is uniform)."""
        return None


class ShardedLoader:
    """Deterministic per-rank loader over a shared dataset.

    Every epoch draws one global permutation (identical on all ranks, from
    the shared seed + epoch number) and splits it into global batches of
    ``global_batch_size``; each rank takes its contiguous slice of every
    global batch.  This mirrors how Horovod/Deep500 shard a global batch
    and keeps the number of steps identical across ranks — a requirement
    of the partial collectives (every rank joins every round).

    Parameters
    ----------
    dataset:
        The shared dataset.
    global_batch_size:
        Total batch size across all ranks (Table 1's "Batch size").
    rank, world_size:
        This rank's position.
    seed:
        Shared shuffling seed.
    drop_last:
        Drop the trailing incomplete global batch (default true so every
        rank always has the same number of steps per epoch).
    """

    def __init__(
        self,
        dataset: Dataset,
        global_batch_size: int,
        rank: int = 0,
        world_size: int = 1,
        seed: SeedLike = 0,
        shuffle: bool = True,
        drop_last: bool = True,
        bucket_by_length: bool = False,
        num_buckets: int = 8,
    ) -> None:
        if global_batch_size < world_size:
            raise ValueError(
                f"global batch size {global_batch_size} smaller than world size {world_size}"
            )
        if global_batch_size % world_size:
            raise ValueError(
                f"global batch size {global_batch_size} must be divisible by "
                f"world size {world_size}"
            )
        if not 0 <= rank < world_size:
            raise ValueError(f"rank {rank} out of range for world size {world_size}")
        self.dataset = dataset
        self.global_batch_size = int(global_batch_size)
        self.local_batch_size = self.global_batch_size // int(world_size)
        self.rank = int(rank)
        self.world_size = int(world_size)
        self.seed = 0 if seed is None else seed
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.bucket_by_length = bucket_by_length
        self.num_buckets = int(num_buckets)
        if bucket_by_length and dataset.example_sizes() is None:
            raise ValueError(
                "bucket_by_length=True requires a dataset with example_sizes()"
            )

    # ------------------------------------------------------------------
    def steps_per_epoch(self) -> int:
        n = len(self.dataset)
        if self.bucket_by_length:
            # Independent per-rank pipelines over static shards: every rank
            # owns n // world_size examples and draws local batches from
            # its own length buckets (the Horovod-style input pipeline the
            # paper describes).  All ranks run the same number of steps.
            shard = n // self.world_size
            return shard // self.local_batch_size
        if self.drop_last:
            return n // self.global_batch_size
        return int(np.ceil(n / self.global_batch_size))

    def _epoch_permutation(self, epoch: int) -> np.ndarray:
        n = len(self.dataset)
        if not self.shuffle:
            return np.arange(n)
        rng = seeded_rng(rank_seed(int(self.seed), 0, stream=epoch))
        return rng.permutation(n)

    def _rank_shard(self) -> np.ndarray:
        """Static per-rank shard (identical across epochs)."""
        n = len(self.dataset)
        rng = seeded_rng(rank_seed(int(self.seed), 0, stream=10_000))
        perm = rng.permutation(n) if self.shuffle else np.arange(n)
        shard_size = n // self.world_size
        start = self.rank * shard_size
        return perm[start : start + shard_size]

    def _bucketed_batches(self, epoch: int) -> Iterator[Batch]:
        from repro.data.bucketing import BucketBatchSampler  # local import: avoid cycle

        shard = self._rank_shard()
        sizes = self.dataset.example_sizes()
        sampler = BucketBatchSampler(
            sizes[shard],
            batch_size=self.local_batch_size,
            num_buckets=self.num_buckets,
            shuffle=self.shuffle,
            drop_last=True,
            seed=rank_seed(int(self.seed), self.rank, stream=20_000),
        )
        steps = self.steps_per_epoch()
        produced = 0
        for local_positions in sampler.epoch_batches(epoch):
            if produced >= steps:
                break
            yield self.dataset.get_batch(shard[local_positions])
            produced += 1
        # If bucketing produced fewer full batches than the agreed step
        # count (possible when drop_last trims several buckets), pad with
        # re-drawn batches so every rank still runs the same number of
        # steps — a hard requirement of the partial collectives.
        rng = seeded_rng(rank_seed(int(self.seed), self.rank, stream=30_000 + epoch))
        while produced < steps:
            extra = rng.choice(shard, size=self.local_batch_size, replace=False)
            yield self.dataset.get_batch(extra)
            produced += 1

    def epoch_batches(self, epoch: int) -> Iterator[Batch]:
        """Yield this rank's batches for the given epoch."""
        if self.bucket_by_length:
            yield from self._bucketed_batches(epoch)
            return
        perm = self._epoch_permutation(epoch)
        steps = self.steps_per_epoch()
        for step in range(steps):
            start = step * self.global_batch_size
            global_indices = perm[start : start + self.global_batch_size]
            if len(global_indices) < self.global_batch_size and self.drop_last:
                break
            lo = self.rank * self.local_batch_size
            hi = lo + self.local_batch_size
            local = global_indices[lo:hi]
            if len(local) == 0:
                break
            yield self.dataset.get_batch(local)

    def __iter__(self) -> Iterator[Batch]:
        return self.epoch_batches(0)
