"""Synthetic image-classification datasets (CIFAR-like, ImageNet-like).

Each class is a Gaussian cluster in pixel space: a fixed per-class
template image plus per-sample noise.  The signal-to-noise ratio controls
how quickly the small ResNets reach high accuracy, which lets the
time-to-accuracy experiments (Figs. 11 and 12) run in CPU-scale time while
preserving the comparison the paper makes (synch-SGD vs eager-SGD reaching
equivalent accuracy, solo losing accuracy under severe imbalance).

Because every sample has the same shape, the per-batch workload is
balanced — exactly like ResNet training in the paper, where the imbalance
comes from the *system* (Section 2.3) rather than from the data.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.data.loader import Batch, Dataset
from repro.utils.rng import SeedLike, seeded_rng


class ImageClassificationDataset(Dataset):
    """Gaussian-cluster image classification.

    Parameters
    ----------
    num_examples:
        Total number of images.
    num_classes:
        Number of classes (10 for CIFAR-like, configurable for
        ImageNet-like).
    image_shape:
        ``(channels, height, width)``.
    signal:
        Scale of the class template relative to unit noise; larger means
        an easier problem.
    """

    def __init__(
        self,
        num_examples: int = 2_000,
        num_classes: int = 10,
        image_shape: Tuple[int, int, int] = (3, 8, 8),
        signal: float = 2.0,
        seed: SeedLike = None,
    ) -> None:
        if num_examples < num_classes:
            raise ValueError("need at least one example per class")
        rng = seeded_rng(seed)
        self.num_classes = int(num_classes)
        self.image_shape = tuple(image_shape)
        self.signal = float(signal)
        #: Per-class template images (the cluster means).
        self.templates = rng.normal(0.0, 1.0, size=(num_classes, *image_shape)) * signal
        self.labels = rng.integers(0, num_classes, size=num_examples)
        noise = rng.normal(0.0, 1.0, size=(num_examples, *image_shape))
        self.images = self.templates[self.labels] + noise

    def __len__(self) -> int:
        return self.images.shape[0]

    def get_batch(self, indices: Sequence[int]) -> Batch:
        idx = np.asarray(indices, dtype=np.int64)
        return Batch(inputs=self.images[idx], targets=self.labels[idx], indices=idx)

    def split(self, validation_fraction: float = 0.2, seed: SeedLike = 0):
        """Train/validation split returning two index-view datasets."""
        rng = seeded_rng(seed)
        perm = rng.permutation(len(self))
        n_val = int(len(self) * validation_fraction)
        return (_ImageView(self, perm[n_val:]), _ImageView(self, perm[:n_val]))


class _ImageView(Dataset):
    def __init__(self, base: ImageClassificationDataset, indices: np.ndarray) -> None:
        self.base = base
        self.indices = np.asarray(indices, dtype=np.int64)
        self.num_classes = base.num_classes
        self.image_shape = base.image_shape

    def __len__(self) -> int:
        return int(self.indices.size)

    def get_batch(self, indices: Sequence[int]) -> Batch:
        idx = self.indices[np.asarray(indices, dtype=np.int64)]
        return Batch(inputs=self.base.images[idx], targets=self.base.labels[idx], indices=idx)


def cifar10_like(
    num_examples: int = 2_000,
    image_size: int = 8,
    signal: float = 2.0,
    seed: SeedLike = None,
) -> ImageClassificationDataset:
    """A CIFAR-10-like dataset: 10 classes, 3-channel square images."""
    return ImageClassificationDataset(
        num_examples=num_examples,
        num_classes=10,
        image_shape=(3, image_size, image_size),
        signal=signal,
        seed=seed,
    )


def imagenet_like(
    num_examples: int = 4_000,
    num_classes: int = 100,
    image_size: int = 16,
    signal: float = 3.0,
    seed: SeedLike = None,
) -> ImageClassificationDataset:
    """An ImageNet-like dataset: many classes, larger images."""
    return ImageClassificationDataset(
        num_examples=num_examples,
        num_classes=num_classes,
        image_shape=(3, image_size, image_size),
        signal=signal,
        seed=seed,
    )
