"""UCF101-like synthetic video-feature dataset (Sections 2.1 and 6.3).

The paper's video classifier consumes per-frame features extracted by
Inception v3 (a fixed, non-trained preprocessing step) and its training
cost per batch is proportional to the number of frames.  The training set
of UCF101 contains 9,537 videos whose lengths range from 29 to 1,776
frames with a median of 167 and a standard deviation of 97 (Fig. 2a).

:func:`sample_video_lengths` draws synthetic video lengths from a clipped
lognormal distribution calibrated to those statistics, and
:class:`VideoFeatureDataset` attaches class-dependent feature sequences so
that the LSTM classifier has an actual signal to learn while the length
distribution — and hence the inherent load imbalance — matches the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.data.loader import Batch, Dataset
from repro.utils.rng import SeedLike, seeded_rng


@dataclass(frozen=True)
class VideoLengthStats:
    """Reference statistics of the UCF101 training set (Fig. 2a)."""

    num_videos: int = 9_537
    min_frames: int = 29
    max_frames: int = 1_776
    median_frames: int = 167
    std_frames: int = 97
    num_classes: int = 101


#: The statistics quoted in the paper, used to calibrate the sampler.
UCF101_LENGTH_STATS = VideoLengthStats()

#: Lognormal sigma calibrated so that the clipped distribution's standard
#: deviation is close to the paper's 97 frames (see tests).
_LOGNORMAL_SIGMA = 0.50


def sample_video_lengths(
    num_videos: int,
    stats: VideoLengthStats = UCF101_LENGTH_STATS,
    seed: SeedLike = None,
    scale: float = 1.0,
) -> np.ndarray:
    """Sample video lengths (frame counts) matching the paper's distribution.

    Parameters
    ----------
    scale:
        Multiplies all lengths (and the clip bounds); scaled-down datasets
        for CPU experiments use e.g. ``scale=0.1`` to keep the *relative*
        spread while shortening sequences.
    """
    if num_videos < 1:
        raise ValueError("num_videos must be positive")
    if scale <= 0:
        raise ValueError("scale must be positive")
    rng = seeded_rng(seed)
    mu = math.log(stats.median_frames)
    raw = rng.lognormal(mean=mu, sigma=_LOGNORMAL_SIGMA, size=num_videos)
    clipped = np.clip(raw, stats.min_frames, stats.max_frames)
    lengths = np.maximum(1, np.round(clipped * scale)).astype(np.int64)
    return lengths


class VideoFeatureDataset(Dataset):
    """Synthetic per-frame feature sequences with UCF101's length profile.

    Each class has a fixed feature direction; every frame of a video of
    that class is the class direction plus temporal noise, so a classifier
    that aggregates frames (the LSTM) can learn the label.  Feature
    sequences are generated lazily per batch from the per-video seeds,
    keeping memory proportional to the batch rather than to the dataset.

    Parameters
    ----------
    num_videos:
        Number of videos.
    feature_dim:
        Per-frame feature dimensionality (2,048 in the paper; scaled down
        by default).
    num_classes:
        Number of action classes (101 in UCF101).
    length_scale:
        Scale applied to the sampled frame counts (see
        :func:`sample_video_lengths`).
    signal:
        Strength of the class direction relative to unit frame noise.
    """

    def __init__(
        self,
        num_videos: int = 1_000,
        feature_dim: int = 32,
        num_classes: int = 101,
        length_scale: float = 1.0,
        signal: float = 1.5,
        stats: VideoLengthStats = UCF101_LENGTH_STATS,
        seed: SeedLike = None,
    ) -> None:
        if num_videos < 1 or feature_dim < 1 or num_classes < 2:
            raise ValueError("invalid dataset configuration")
        rng = seeded_rng(seed)
        self.feature_dim = int(feature_dim)
        self.num_classes = int(num_classes)
        self.signal = float(signal)
        self.stats = stats
        self.lengths = sample_video_lengths(num_videos, stats=stats, seed=rng, scale=length_scale)
        self.labels = rng.integers(0, num_classes, size=num_videos)
        self.class_directions = rng.normal(0.0, 1.0, size=(num_classes, feature_dim))
        self.class_directions /= np.linalg.norm(self.class_directions, axis=1, keepdims=True)
        # One independent noise seed per video so batches are reproducible
        # regardless of the order in which they are requested.
        self._video_seeds = rng.integers(0, 2**63 - 1, size=num_videos)

    def __len__(self) -> int:
        return int(self.lengths.size)

    def example_sizes(self) -> np.ndarray:
        """Frame count per video (drives the LSTM cost model)."""
        return self.lengths.copy()

    def frame_counts(self) -> np.ndarray:
        """Alias of :meth:`example_sizes`, named as in Fig. 2a."""
        return self.lengths.copy()

    def _video_features(self, index: int) -> np.ndarray:
        rng = seeded_rng(int(self._video_seeds[index]))
        length = int(self.lengths[index])
        base = self.class_directions[self.labels[index]] * self.signal
        noise = rng.normal(0.0, 1.0, size=(length, self.feature_dim))
        return base[None, :] + noise

    def get_batch(self, indices: Sequence[int]) -> Batch:
        idx = np.asarray(indices, dtype=np.int64)
        lengths = self.lengths[idx]
        max_len = int(lengths.max())
        x = np.zeros((idx.size, max_len, self.feature_dim))
        for row, video_index in enumerate(idx):
            feats = self._video_features(int(video_index))
            x[row, : feats.shape[0], :] = feats
        return Batch(
            inputs={"x": x, "lengths": lengths},
            targets=self.labels[idx],
            indices=idx,
            size_hint=float(lengths.sum()),
        )
