"""Static schedule verifier: prove collective schedules correct by family.

Example-based tests exercise a collective at a handful of world sizes and
check the numeric result; this module machine-checks the *schedule* — the
global send/recv multigraph a collective generates — for four properties,
swept over world sizes, chunk counts and host topologies:

**match-completeness**
    Every send is consumed by exactly one receive and vice versa: no
    orphan messages left in a mailbox, no two sends racing for the same
    ``(src, dst, tag)`` receive (ambiguous match).

**tag-space soundness**
    Every tag a schedule mints lies inside its declared region of the
    global tag-region map (:mod:`repro.comm.tags`), the regions are
    pairwise disjoint, and the per-field layout (epoch / phase / round /
    chunk) round-trips exactly — including the epoch-rollover bound,
    which must raise rather than wrap.

**deadlock-freedom**
    The graph of per-rank program order plus cross-rank send→recv match
    edges is acyclic.  Sends are eager on this substrate, so a blocked
    schedule manifests as starved receives; the verifier runs every rank
    with a short receive timeout, records starvation, and classifies a
    cyclic wait-for graph as a deadlock.

**reduction coverage**
    Each rank contributes a one-hot + moment integer certificate; the
    reduced value on every rank must equal the exact elementwise sum of
    all certificates (``float64`` integer arithmetic below ``2**53`` is
    exact), proving every rank's term lands in the result exactly once.

The registry covers every registered collective — the four allreduce
algorithms (with chunk pipelining and non-uniform
:class:`~repro.collectives.topology.HostTopology` layouts for the
hierarchical schedule), broadcast, reduce, allgather, the barrier, the
compressed ring, fused :class:`~repro.training.exchange.SynchronousExchange`
plans, the serving tier's request/response + hot-swap round trip
(:func:`repro.serving.protocol.serving_round_trip`), the flight-recorder
telemetry collection (:func:`repro.obs.collect.telemetry_round_trip`) —
plus purely static
checks of the partial dissemination pattern
and the persistent solo schedules.  :func:`self_test` proves the checkers
have teeth: each deliberately broken schedule (dropped receive, reused
tag, swapped ring neighbour, double-counted term, tag outside its
region) must be rejected by the matching checker.

Entry point: ``python -m repro verify`` (see :mod:`repro.cli`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.recording import (
    CommEvent,
    RecordingCommunicator,
    RecordingWorld,
    RunRecord,
)
from repro.collectives import sync
from repro.collectives.schedules import build_solo_allreduce_schedule
from repro.collectives.topology import HostTopology
from repro.comm import tags

#: World sizes of the default sweep: the paper's power-of-two scales plus
#: primes and composites that exercise the non-power-of-two fold paths.
DEFAULT_WORLD_SIZES: Tuple[int, ...] = (2, 3, 4, 5, 7, 8, 16, 64)

#: Receive timeout of healthy verification runs (generous: a loaded CI
#: machine must not turn a correct schedule into a starvation report).
HEALTHY_RECV_TIMEOUT = 60.0
#: Receive timeout of deliberately broken (self-test) runs.
MUTANT_RECV_TIMEOUT = 1.0


# ---------------------------------------------------------------------------
# report model
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class Violation:
    """One property violation found in one verification case."""

    case: str
    check: str  # "match" | "tags" | "deadlock" | "reduction" | "crash" | "self-test"
    detail: str

    def __str__(self) -> str:
        return f"[{self.check}] {self.case}: {self.detail}"


@dataclass
class CaseResult:
    """Outcome of one verification case."""

    name: str
    world_size: int
    violations: List[Violation] = field(default_factory=list)
    num_events: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations


class VerificationReport:
    """Aggregated outcome of a verification sweep."""

    def __init__(self, results: Sequence[CaseResult]) -> None:
        self.results = list(results)

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    @property
    def violations(self) -> List[Violation]:
        return [v for r in self.results for v in r.violations]

    def summary(self) -> str:
        lines = []
        for r in self.results:
            status = "PASS" if r.ok else "FAIL"
            lines.append(
                f"  {status}  {r.name}  (P={r.world_size}, {r.num_events} events)"
            )
            for v in r.violations:
                lines.append(f"        -> {v}")
        passed = sum(1 for r in self.results if r.ok)
        lines.append(
            f"verified {len(self.results)} case(s): {passed} passed, "
            f"{len(self.results) - passed} failed"
        )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# contribution certificates
# ---------------------------------------------------------------------------
def contribution(rank: int, size: int, n: Optional[int] = None,
                 unit: bool = False) -> np.ndarray:
    """Rank ``rank``'s integer certificate vector.

    The first ``size`` elements are the rank's one-hot indicator (element
    ``rank`` is 1): after a sum-allreduce they must all equal exactly 1,
    so a dropped or double-counted rank is visible *per rank*.  The last
    three elements carry first/second moments ``r+1`` and ``(r+1)^2``
    (multiset fingerprints that catch compensating errors) and a count
    term.  ``unit=True`` restricts values to 0/1 so partial sums stay
    exact even in a ``float16`` wire format (integers < 2048).
    """
    if n is None:
        n = size + 3
    if n < size + 3:
        raise ValueError(
            f"certificate length {n} too short for world size {size} "
            f"(need at least {size + 3})"
        )
    v = np.zeros(n, dtype=np.float64)
    v[rank] = 1.0
    if unit:
        v[-3] = 1.0
        v[-2] = 1.0
    else:
        v[-3] = rank + 1
        v[-2] = (rank + 1) ** 2
    v[-1] = 1.0
    return v


def expected_sum(size: int, n: Optional[int] = None, unit: bool = False) -> np.ndarray:
    """Exact elementwise sum of all ranks' certificates."""
    if n is None:
        n = size + 3
    v = np.zeros(n, dtype=np.float64)
    v[:size] = 1.0
    if unit:
        v[-3] = size
        v[-2] = size
    else:
        v[-3] = size * (size + 1) / 2
        v[-2] = sum((r + 1) ** 2 for r in range(size))
    v[-1] = size
    return v


# ---------------------------------------------------------------------------
# checkers
# ---------------------------------------------------------------------------
def check_match_completeness(record: RunRecord, case: str) -> List[Violation]:
    """No orphan sends, no unmatched receives, no ambiguous double-matches."""
    violations: List[Violation] = []

    # Two sends sharing (src, dst, tag, channel) race for the same posted
    # receive: the FIFO mailbox resolves the race deterministically here,
    # but the schedule's tag-uniqueness contract is broken and a real
    # transport with out-of-order delivery would corrupt the reduction.
    by_key: Dict[Tuple[int, int, int, str], int] = {}
    for e in record.sends():
        key = (e.rank, e.peer, e.tag, e.channel)
        by_key[key] = by_key.get(key, 0) + 1
    for (src, dst, tag, channel), count in sorted(by_key.items()):
        if count > 1:
            violations.append(Violation(
                case, "match",
                f"ambiguous match: {count} sends {src}->{dst} share tag {tag} "
                f"on channel {channel!r}",
            ))

    consumed = {e.seq for e in record.recvs()}
    sent = {e.seq: e for e in record.sends()}
    for seq, e in sorted(sent.items()):
        if seq not in consumed and not record.starved():
            # With starvation present the orphans are a symptom; the
            # deadlock checker reports the root cause instead.
            violations.append(Violation(
                case, "match",
                f"orphan send: {e.rank}->{e.peer} tag {e.tag} on channel "
                f"{e.channel!r} (seq {seq}) was never received",
            ))
    for e in record.recvs():
        if e.seq not in sent:
            violations.append(Violation(
                case, "match",
                f"recv on rank {e.rank} consumed unknown message seq {e.seq}",
            ))
    return violations


def check_tag_soundness(
    record: RunRecord, case: str, allowed_regions: FrozenSet[str]
) -> List[Violation]:
    """Every minted tag lies in a declared region the case is allowed to use."""
    violations: List[Violation] = []
    seen_bad: set = set()
    for e in record.sends():
        reg = tags.region_of(e.tag)
        if reg is None:
            if ("user", e.tag) not in seen_bad:
                seen_bad.add(("user", e.tag))
                violations.append(Violation(
                    case, "tags",
                    f"tag {e.tag} (send {e.rank}->{e.peer}) lies outside every "
                    f"declared region of the tag-region map",
                ))
            continue
        if reg.name not in allowed_regions:
            if (reg.name, e.tag) not in seen_bad:
                seen_bad.add((reg.name, e.tag))
                violations.append(Violation(
                    case, "tags",
                    f"tag {e.tag} (send {e.rank}->{e.peer}) lies in region "
                    f"{reg.name!r}, not allowed for this schedule "
                    f"(allowed: {sorted(allowed_regions)})",
                ))
        if reg.name == tags.SYNC.name:
            fields = tags.decode_sync_tag(e.tag)
            if tags.sync_tag(*fields) != e.tag:
                violations.append(Violation(
                    case, "tags",
                    f"sync tag {e.tag} does not round-trip through the "
                    f"(epoch, phase, round, chunk) layout: {fields}",
                ))
        elif reg.name == tags.SHARDING.name:
            fields = tags.decode_sharding_tag(e.tag)
            if tags.sharding_tag(*fields) != e.tag:
                violations.append(Violation(
                    case, "tags",
                    f"sharding tag {e.tag} does not round-trip through the "
                    f"(epoch, phase, round, chunk) layout: {fields}",
                ))
    return violations


def check_deadlock_freedom(record: RunRecord, case: str) -> List[Violation]:
    """No cyclic waits; program order + match edges form a DAG."""
    violations: List[Violation] = []
    for rank, err in record.crashed:
        violations.append(Violation(
            case, "crash", f"rank {rank} raised {type(err).__name__}: {err}"
        ))

    starved = record.starved()
    if starved:
        # Each starving rank waits on its awaited source.  A cycle among
        # the starving ranks is a deadlock; an acyclic wait-for graph
        # means some send was simply never issued (lost message).
        waits: Dict[int, int] = {e.rank: e.peer for e in starved}
        in_cycle: set = set()
        for start in waits:
            slow = fast = start
            seen = []
            node = start
            while node in waits and node not in in_cycle and len(seen) <= len(waits):
                seen.append(node)
                node = waits[node]
                if node in seen:
                    in_cycle.update(seen[seen.index(node):])
                    break
        if in_cycle:
            cycle = sorted(in_cycle)
            violations.append(Violation(
                case, "deadlock",
                f"cyclic wait among ranks {cycle}: each is blocked on a "
                f"receive whose sender is itself blocked",
            ))
        else:
            details = ", ".join(
                f"rank {e.rank} <- {e.peer} tag {e.tag}" for e in starved[:4]
            )
            violations.append(Violation(
                case, "deadlock",
                f"{len(starved)} receive(s) starved with no cyclic wait "
                f"(lost/never-issued message): {details}",
            ))
        return violations

    # Healthy run: independently certify acyclicity of program order +
    # match edges (Kahn toposort).  The run completing is already a
    # witness schedule; this re-derives it from the recorded graph alone.
    events = record.events
    index = {id(e): i for i, e in enumerate(events)}
    adj: List[List[int]] = [[] for _ in events]
    indegree = [0] * len(events)

    by_rank: Dict[int, List[CommEvent]] = {}
    for e in events:
        by_rank.setdefault(e.rank, []).append(e)
    for rank_events in by_rank.values():
        rank_events.sort(key=lambda e: e.order)
        for a, b in zip(rank_events, rank_events[1:]):
            adj[index[id(a)]].append(index[id(b)])
            indegree[index[id(b)]] += 1
    send_by_seq = {e.seq: e for e in record.sends()}
    for e in record.recvs():
        s = send_by_seq.get(e.seq)
        if s is not None and s is not e:
            adj[index[id(s)]].append(index[id(e)])
            indegree[index[id(e)]] += 1

    ready = [i for i, d in enumerate(indegree) if d == 0]
    seen = 0
    while ready:
        i = ready.pop()
        seen += 1
        for j in adj[i]:
            indegree[j] -= 1
            if indegree[j] == 0:
                ready.append(j)
    if seen != len(events):
        violations.append(Violation(
            case, "deadlock",
            f"program-order + match-edge graph has a cycle "
            f"({len(events) - seen} of {len(events)} events unreachable in "
            f"topological order)",
        ))
    return violations


def check_reduction_coverage(
    record: RunRecord,
    case: str,
    expected: Callable[[int], Any],
    exact: bool = True,
) -> List[Violation]:
    """Every rank's result equals the certificate-exact expected value."""
    violations: List[Violation] = []
    if any(err is not None for err in record.errors):
        return violations  # root cause reported by the deadlock checker
    for rank in range(record.world_size):
        want = expected(rank)
        got = record.results[rank]
        if want is None:
            if got is not None:
                violations.append(Violation(
                    case, "reduction",
                    f"rank {rank} returned a value where None was expected",
                ))
            continue
        if isinstance(want, np.ndarray):
            got_arr = np.asarray(got, dtype=np.float64).reshape(-1)
            want_arr = np.asarray(want, dtype=np.float64).reshape(-1)
            if got_arr.shape != want_arr.shape:
                violations.append(Violation(
                    case, "reduction",
                    f"rank {rank}: result shape {got_arr.shape} != expected "
                    f"{want_arr.shape}",
                ))
                continue
            matches = (
                np.array_equal(got_arr, want_arr)
                if exact
                else np.allclose(got_arr, want_arr, rtol=1e-12, atol=1e-12)
            )
            if not matches:
                bad = np.flatnonzero(got_arr != want_arr)[:4]
                violations.append(Violation(
                    case, "reduction",
                    f"rank {rank}: result differs from the exact certificate "
                    f"sum at indices {bad.tolist()} "
                    f"(got {got_arr[bad].tolist()}, want {want_arr[bad].tolist()}) "
                    f"— some rank's term is missing or counted twice",
                ))
        elif got != want:
            violations.append(Violation(
                case, "reduction",
                f"rank {rank}: result {got!r} != expected {want!r}",
            ))
    return violations


# ---------------------------------------------------------------------------
# case model
# ---------------------------------------------------------------------------
_REGIONS_SYNC = frozenset({tags.SYNC.name})
_REGIONS_SHARDING = frozenset({tags.SHARDING.name})
_REGIONS_BARRIER = frozenset({tags.BARRIER.name})
_REGIONS_SERVING = frozenset({tags.SERVING.name})
_REGIONS_TELEMETRY = frozenset({tags.TELEMETRY.name})


@dataclass
class VerifyCase:
    """One live verification case: an SPMD function plus its oracle."""

    name: str
    world_size: int
    fn: Callable[[RecordingCommunicator], Any]
    expected: Optional[Callable[[int], Any]] = None
    exact: bool = True
    regions: FrozenSet[str] = _REGIONS_SYNC
    host_topology: Optional[HostTopology] = None
    recv_timeout: float = HEALTHY_RECV_TIMEOUT


def run_case(case: VerifyCase) -> CaseResult:
    """Execute one live case and run every checker over its record."""
    world = RecordingWorld(
        case.world_size,
        host_topology=case.host_topology,
        recv_timeout=case.recv_timeout,
    )
    record = world.run(case.fn)
    violations: List[Violation] = []
    violations += check_match_completeness(record, case.name)
    violations += check_tag_soundness(record, case.name, case.regions)
    violations += check_deadlock_freedom(record, case.name)
    if case.expected is not None:
        violations += check_reduction_coverage(
            record, case.name, case.expected, exact=case.exact
        )
    return CaseResult(
        name=case.name,
        world_size=case.world_size,
        violations=violations,
        num_events=len(record.events),
    )


# ---------------------------------------------------------------------------
# case registry
# ---------------------------------------------------------------------------
def _hier_topologies(size: int) -> List[Tuple[str, Optional[HostTopology]]]:
    """Host layouts to sweep for the hierarchical schedule at ``size``."""
    layouts: List[Tuple[str, Optional[HostTopology]]] = [("flat", None)]
    specs: List[List[int]] = []
    if size >= 2:
        specs.append([size - size // 2, size // 2])
    if size >= 3:
        specs.append([size - 1, 1])
    specs += {
        4: [[3, 1]],
        8: [[4, 2, 2]],
        16: [[5, 7, 4]],
        64: [[32, 16, 16]],
    }.get(size, [])
    seen: set = set()
    for spec in specs:
        key = tuple(spec)
        if key in seen or sum(spec) != size or min(spec) < 1:
            continue
        seen.add(key)
        layouts.append(
            ("+".join(str(n) for n in spec), HostTopology.from_hosts(spec))
        )
    return layouts


def build_cases(size: int, include_exchange: bool = True) -> List[VerifyCase]:
    """All live verification cases at world size ``size``."""
    cases: List[VerifyCase] = []
    total = expected_sum(size)

    for algorithm in ("recursive_doubling", "ring", "rabenseifner"):
        for n_chunks in (1, 3):
            def fn(comm, _a=algorithm, _c=n_chunks, _p=size):
                return sync.allreduce(
                    comm, contribution(comm.rank, _p),
                    algorithm=_a, n_chunks=_c,
                )
            cases.append(VerifyCase(
                name=f"allreduce[{algorithm},chunks={n_chunks}]",
                world_size=size,
                fn=fn,
                expected=lambda rank, _t=total: _t,
            ))

    def fn_avg(comm, _p=size):
        return sync.allreduce(
            comm, contribution(comm.rank, _p), algorithm="ring", average=True
        )
    cases.append(VerifyCase(
        name="allreduce[ring,average]",
        world_size=size,
        fn=fn_avg,
        expected=lambda rank, _t=total, _p=size: _t / _p,
        exact=False,
    ))

    for label, topology in _hier_topologies(size):
        def fn_hier(comm, _p=size):
            return sync.allreduce(
                comm, contribution(comm.rank, _p),
                algorithm="hierarchical", n_chunks=2,
            )
        cases.append(VerifyCase(
            name=f"allreduce[hierarchical,{label}]",
            world_size=size,
            fn=fn_hier,
            expected=lambda rank, _t=total: _t,
            host_topology=topology,
        ))

    # Compressed collectives: wire payloads are fp16, so the certificate
    # is restricted to 0/1 entries (every partial sum an integer < 2048
    # stays exact even at the narrow width).
    try:
        from repro.compression import get_codec
        codec = get_codec("fp16")
    except Exception:  # pragma: no cover - compression always present
        codec = None
    if codec is not None:
        unit_total = expected_sum(size, unit=True)

        def fn_comp(comm, _p=size, _codec=codec):
            return sync.allreduce_compressed_ring(
                comm, contribution(comm.rank, _p, unit=True), _codec,
                average=False, n_chunks=2,
            )
        cases.append(VerifyCase(
            name="allreduce[compressed_ring,fp16]",
            world_size=size,
            fn=fn_comp,
            expected=lambda rank, _t=unit_total: _t,
        ))
        if size >= 4:
            def fn_comp_hier(comm, _p=size, _codec=codec):
                return sync.allreduce_compressed_hierarchical(
                    comm, contribution(comm.rank, _p, unit=True), _codec,
                    average=False,
                )
            cases.append(VerifyCase(
                name="allreduce[compressed_hierarchical,fp16]",
                world_size=size,
                fn=fn_comp_hier,
                expected=lambda rank, _t=unit_total: _t,
                host_topology=HostTopology.from_hosts(
                    [size - size // 2, size // 2]
                ),
            ))

    for root in sorted({0, size - 1}):
        def fn_bcast(comm, _p=size, _root=root):
            return sync.broadcast(comm, contribution(comm.rank, _p), root=_root)
        cases.append(VerifyCase(
            name=f"broadcast[root={root}]",
            world_size=size,
            fn=fn_bcast,
            expected=lambda rank, _p=size, _root=root: contribution(_root, _p),
        ))

    def fn_reduce(comm, _p=size):
        return sync.reduce(comm, contribution(comm.rank, _p), root=_p - 1)
    cases.append(VerifyCase(
        name=f"reduce[root={size - 1}]",
        world_size=size,
        fn=fn_reduce,
        expected=lambda rank, _t=total, _p=size: _t if rank == _p - 1 else None,
    ))

    def fn_allgather(comm):
        return sync.allgather(comm, (comm.rank, comm.rank * comm.rank))
    cases.append(VerifyCase(
        name="allgather",
        world_size=size,
        fn=fn_allgather,
        expected=lambda rank, _p=size: [(r, r * r) for r in range(_p)],
    ))

    # Sharded collectives: reduce_scatter's per-rank window must hold
    # exactly the certificate sum restricted to the owned slice, and the
    # reduce-scatter -> allgather_flat composition must restore the full
    # sum on every rank — for every schedule family, chunking and layout.
    from repro.collectives import sharding as _sharding

    n_shard = size + 3
    for algorithm in ("ring", "halving"):
        for n_chunks in (1, 3):
            def fn_rs(comm, _a=algorithm, _c=n_chunks, _p=size):
                flat, (lo, hi) = _sharding.reduce_scatter(
                    comm, contribution(comm.rank, _p),
                    algorithm=_a, n_chunks=_c,
                )
                return flat[lo:hi].copy()
            def expect_window(rank, _a=algorithm, _p=size, _t=total, _n=n_shard):
                lo, hi = _sharding.shard_bounds(_n, _p, _a)[rank]
                return _t[lo:hi]
            cases.append(VerifyCase(
                name=f"reduce_scatter[{algorithm},chunks={n_chunks}]",
                world_size=size,
                fn=fn_rs,
                expected=expect_window,
                regions=_REGIONS_SHARDING,
            ))

            def fn_rs_ag(comm, _a=algorithm, _c=n_chunks, _p=size):
                flat, _ = _sharding.reduce_scatter(
                    comm, contribution(comm.rank, _p),
                    algorithm=_a, n_chunks=_c,
                )
                return _sharding.allgather_flat(
                    comm, flat,
                    algorithm=_sharding.ALLGATHER_FOR_REDUCE_SCATTER[_a],
                    n_chunks=_c,
                )
            cases.append(VerifyCase(
                name=f"reduce_scatter+allgather[{algorithm},chunks={n_chunks}]",
                world_size=size,
                fn=fn_rs_ag,
                expected=lambda rank, _t=total: _t,
                regions=_REGIONS_SHARDING,
            ))

    for label, topology in _hier_topologies(size):
        def fn_rs_ag_hier(comm, _p=size):
            flat, _ = _sharding.reduce_scatter(
                comm, contribution(comm.rank, _p),
                algorithm="hierarchical", n_chunks=2,
            )
            return _sharding.allgather_flat(
                comm, flat, algorithm="hierarchical", n_chunks=2,
            )
        cases.append(VerifyCase(
            name=f"reduce_scatter+allgather[hierarchical,{label}]",
            world_size=size,
            fn=fn_rs_ag_hier,
            expected=lambda rank, _t=total: _t,
            regions=_REGIONS_SHARDING,
            host_topology=topology,
        ))

    if codec is not None:
        unit_total_shard = expected_sum(size, unit=True)

        def fn_rs_ag_comp(comm, _p=size, _codec=codec):
            flat, _ = _sharding.reduce_scatter(
                comm, contribution(comm.rank, _p, unit=True),
                algorithm="ring", n_chunks=2, codec=_codec,
            )
            return _sharding.allgather_flat(
                comm, flat, algorithm="ring", n_chunks=2, codec=_codec,
            )
        cases.append(VerifyCase(
            name="reduce_scatter+allgather[compressed_ring,fp16]",
            world_size=size,
            fn=fn_rs_ag_comp,
            expected=lambda rank, _t=unit_total_shard: _t,
            regions=_REGIONS_SHARDING,
        ))

    def fn_barrier(comm):
        comm.barrier()
        comm.barrier()
        return None
    cases.append(VerifyCase(
        name="barrier[x2]",
        world_size=size,
        fn=fn_barrier,
        regions=_REGIONS_BARRIER,
    ))

    # The serving tier's request/response + hot-swap + stop schedule
    # (frontend fan-out, replica responses, publisher weight shipments
    # and announcements) — every receive source-explicit, every tag from
    # the serving region.  Each replica doubles its inputs, so the
    # frontend's total is exactly num_requests * (num_requests + 1).
    def fn_serving(comm):
        from repro.serving.protocol import serving_round_trip
        return serving_round_trip(comm, num_requests=4, num_swaps=2)
    cases.append(VerifyCase(
        name="serving[round-trip]",
        world_size=size,
        fn=fn_serving,
        expected=lambda rank, _p=size: 20 if rank == _p - 1 else None,
        regions=_REGIONS_SERVING,
    ))

    # The flight-recorder collection schedule (clock-sync ping-pong per
    # peer followed by per-rank buffer shipment to rank 0) — every
    # receive source-explicit, every tag from the telemetry region.
    # Rank 0 sums the known payloads (rank + 1), so the oracle is the
    # triangular number P * (P + 1) / 2.
    def fn_telemetry(comm):
        from repro.obs.collect import telemetry_round_trip
        return telemetry_round_trip(comm, rounds=2)
    cases.append(VerifyCase(
        name="telemetry[collection]",
        world_size=size,
        fn=fn_telemetry,
        expected=lambda rank, _p=size: _p * (_p + 1) // 2 if rank == 0 else None,
        regions=_REGIONS_TELEMETRY,
    ))

    if include_exchange and size <= 8:
        n = size + 15
        exchange_total = expected_sum(size, n=n)
        for style, algorithm in (
            ("deep500", "ring"),
            ("horovod", "ring"),
            ("horovod", "recursive_doubling"),
        ):
            def fn_exchange(comm, _s=style, _a=algorithm, _p=size, _n=n):
                from repro.training.exchange import SynchronousExchange
                with SynchronousExchange(
                    comm, style=_s, algorithm=_a, fusion_buckets=2
                ) as ex:
                    result = ex.exchange(
                        _p * contribution(comm.rank, _p, n=_n)
                    )
                return result.gradient
            cases.append(VerifyCase(
                name=f"exchange[{style},{algorithm},buckets=2]",
                world_size=size,
                fn=fn_exchange,
                expected=lambda rank, _t=exchange_total: _t,
            ))
        if size >= 4:
            def fn_exchange_hier(comm, _p=size, _n=n):
                from repro.training.exchange import SynchronousExchange
                with SynchronousExchange(
                    comm, style="deep500", algorithm="hierarchical",
                    fusion_buckets=2,
                ) as ex:
                    result = ex.exchange(
                        _p * contribution(comm.rank, _p, n=_n)
                    )
                return result.gradient
            cases.append(VerifyCase(
                name="exchange[deep500,hierarchical,multi-host]",
                world_size=size,
                fn=fn_exchange_hier,
                expected=lambda rank, _t=exchange_total: _t,
                host_topology=HostTopology.from_hosts(
                    [size - size // 2, size // 2]
                ),
            ))

        # The ZeRO-1 sharded exchange: reduce-scatter, shard-local SGD
        # update, parameter allgather.  Every rank starts from the same
        # seeded model, contributes size * certificate so the averaged
        # gradient is exactly the certificate sum, and must end with
        # params == init - lr * sum on every element — proving each
        # window's update ran exactly once and the gather restored the
        # full parameter vector.
        def _shard_model():
            import repro.nn as nn
            return nn.Sequential(nn.Dense(size + 4, 2, seed=20260808))

        probe = _shard_model()
        from repro.nn.parameters import flatten_parameters as _flatten
        n_z1 = _flatten(probe).size
        z1_lr = 0.25
        z1_total = expected_sum(size, n=n_z1)
        z1_expected = _flatten(probe) - z1_lr * z1_total
        for z1_algorithm in ("ring", "halving"):
            def fn_zero1(comm, _a=z1_algorithm, _p=size, _n=n_z1):
                from repro.nn.optim import SGD
                from repro.training.exchange import ShardedExchange
                model = _shard_model()
                optimizer = SGD(model, z1_lr)
                ex = ShardedExchange(comm, algorithm=_a, fusion_buckets=2)
                ex.exchange_update(
                    _p * contribution(comm.rank, _p, n=_n), model, optimizer
                )
                return _flatten(model)
            cases.append(VerifyCase(
                name=f"sharded-exchange[zero1,{z1_algorithm},buckets=2]",
                world_size=size,
                fn=fn_zero1,
                expected=lambda rank, _t=z1_expected: _t,
                regions=_REGIONS_SHARDING,
            ))
        if size >= 4:
            def fn_zero1_hier(comm, _p=size, _n=n_z1):
                from repro.nn.optim import SGD
                from repro.training.exchange import ShardedExchange
                model = _shard_model()
                optimizer = SGD(model, z1_lr)
                ex = ShardedExchange(comm, fusion_buckets=2)
                ex.exchange_update(
                    _p * contribution(comm.rank, _p, n=_n), model, optimizer
                )
                return _flatten(model)
            cases.append(VerifyCase(
                name="sharded-exchange[zero1,hierarchical,multi-host]",
                world_size=size,
                fn=fn_zero1_hier,
                expected=lambda rank, _t=z1_expected: _t,
                regions=_REGIONS_SHARDING,
                host_topology=HostTopology.from_hosts(
                    [size - size // 2, size // 2]
                ),
            ))
    return cases


# ---------------------------------------------------------------------------
# static checks (no live run needed)
# ---------------------------------------------------------------------------
def check_tag_layout() -> CaseResult:
    """Boundary self-test of the tag-region map and the sync layout.

    Proves the regions are disjoint, the (epoch, phase, round, chunk)
    layout round-trips, and — the epoch-rollover clause — every field
    *raises* one past its bound instead of wrapping into a neighbour.
    """
    case = "tag-layout"
    violations: List[Violation] = []
    try:
        tags.check_region_disjointness()
    except ValueError as exc:
        violations.append(Violation(case, "tags", str(exc)))

    samples = [
        (0, 0, 0, 0),
        (0, tags.SYNC_MAX_PHASES - 1, tags.SYNC_MAX_ROUNDS - 1,
         tags.SYNC_MAX_CHUNKS - 1),
        (tags.SYNC_MAX_EPOCHS - 1, tags.SYNC_MAX_PHASES - 1,
         tags.SYNC_MAX_ROUNDS - 1, tags.SYNC_MAX_CHUNKS - 1),
        (12345, 11, 99, 3),
    ]
    for fields in samples:
        tag = tags.sync_tag(*fields)
        if tag not in tags.SYNC:
            violations.append(Violation(
                case, "tags", f"sync tag {tag} of {fields} escapes its region"
            ))
        if tuple(tags.decode_sync_tag(tag)) != fields:
            violations.append(Violation(
                case, "tags",
                f"sync layout does not round-trip: {fields} -> {tag} -> "
                f"{tuple(tags.decode_sync_tag(tag))}",
            ))

    sharding_samples = [
        (0, 0, 0, 0),
        (tags.SHARDING_MAX_EPOCHS - 1, tags.SHARDING_MAX_PHASES - 1,
         tags.SHARDING_MAX_ROUNDS - 1, tags.SHARDING_MAX_CHUNKS - 1),
        (54321, 11, 999, 3),
    ]
    for fields in sharding_samples:
        tag = tags.sharding_tag(*fields)
        if tag not in tags.SHARDING:
            violations.append(Violation(
                case, "tags",
                f"sharding tag {tag} of {fields} escapes its region",
            ))
        if tuple(tags.decode_sharding_tag(tag)) != fields:
            violations.append(Violation(
                case, "tags",
                f"sharding layout does not round-trip: {fields} -> {tag} -> "
                f"{tuple(tags.decode_sharding_tag(tag))}",
            ))

    overflowing = [
        ("epoch", lambda: tags.sync_tag(tags.SYNC_MAX_EPOCHS, 0, 0, 0)),
        ("epoch", lambda: tags.sync_tag(-1, 0, 0, 0)),
        ("phase", lambda: tags.sync_tag(0, tags.SYNC_MAX_PHASES, 0, 0)),
        ("round", lambda: tags.sync_tag(0, 0, tags.SYNC_MAX_ROUNDS, 0)),
        ("chunk", lambda: tags.sync_tag(0, 0, 0, tags.SYNC_MAX_CHUNKS)),
        ("sharding epoch", lambda: tags.sharding_tag(
            tags.SHARDING_MAX_EPOCHS, 0, 0, 0)),
        ("sharding epoch", lambda: tags.sharding_tag(-1, 0, 0, 0)),
        ("sharding phase", lambda: tags.sharding_tag(
            0, tags.SHARDING_MAX_PHASES, 0, 0)),
        ("sharding round", lambda: tags.sharding_tag(
            0, 0, tags.SHARDING_MAX_ROUNDS, 0)),
        ("sharding chunk", lambda: tags.sharding_tag(
            0, 0, 0, tags.SHARDING_MAX_CHUNKS)),
        ("barrier epoch", lambda: tags.barrier_tag(
            tags.BARRIER.span // tags.BARRIER_TAGS_PER_EPOCH, 0)),
        ("partial round", lambda: tags.partial_activation_tag(
            tags.PARTIAL_ACTIVATION.span)),
        ("solo round", lambda: tags.solo_activation_tag(
            tags.SOLO_ACTIVATION.span)),
        ("serving request seq", lambda: tags.serving_request_tag(-1)),
        ("serving response seq", lambda: tags.serving_response_tag(-1)),
        ("serving swap version", lambda: tags.serving_swap_tag(-1)),
        ("serving control kind", lambda: tags.serving_control_tag(
            tags.SERVING_CONTROL_CAPACITY)),
        ("telemetry ping round", lambda: tags.telemetry_ping_tag(
            1, tags.TELEMETRY_SYNC_MAX_ROUNDS)),
        ("telemetry pong peer", lambda: tags.telemetry_pong_tag(0, 0)),
        ("telemetry buffer rank", lambda: tags.telemetry_buffer_tag(0)),
        ("telemetry buffer rank", lambda: tags.telemetry_buffer_tag(
            tags.TELEMETRY_BUFFER_CAPACITY)),
    ]
    for label, mint in overflowing:
        try:
            minted = mint()
        except ValueError:
            continue
        violations.append(Violation(
            case, "tags",
            f"{label} overflow wrapped silently into tag {minted} instead of "
            f"raising",
        ))
    return CaseResult(case, 0, violations)


def check_dissemination(size: int, explore_limit: int = 8) -> CaseResult:
    """Static coverage proof of the partial activation dissemination.

    Mirrors :meth:`PartialAllreduce._forward_activation`: a rank at
    offset ``d`` from the initiator, first activated via distance class
    ``k``, forwards to offsets ``d + 2^j`` for ``j > k`` while
    ``d + 2^j < P`` (no wrap); the initiator (``k = -1``) forwards to
    every class.  A rank forwards for its *first* activation only.
    Offsets are initiator-relative, so one check per world size proves
    the pattern for every initiator.  Three checks:

    * **unique parent** — every offset in ``[1, P)`` is the target of
      exactly one forward (strip the top set bit), so coverage cannot
      depend on which of several racing activations a rank sees first;
    * **union coverage** — the forward set reaches all ``P`` offsets;
    * **first-activation exploration** (``P <= explore_limit``) — an
      exhaustive search over message delivery orders proves every
      reachable terminal state has all ranks activated.  This is the
      check that rejects the wrapping ``mod P`` variant of the rule,
      which strands ranks at non-power-of-two sizes.
    """
    case = f"partial-dissemination[P={size}]"
    violations: List[Violation] = []
    depth = max(1, int(np.ceil(np.log2(size)))) if size > 1 else 0

    def forwards(offset: int, k: int) -> List[Tuple[int, int]]:
        out = []
        for j in range(k + 1, depth):
            target = offset + (1 << j)
            if target >= size:
                break
            out.append((target, j))
        return out

    parents: Dict[int, List[int]] = {d: [] for d in range(1, size)}
    reach: Dict[int, int] = {0: -1}
    frontier = [(0, -1)]
    while frontier:
        offset, k = frontier.pop()
        for target, j in forwards(offset, k):
            parents[target].append(offset)
            if target not in reach:
                reach[target] = j
                frontier.append((target, j))
    missing = sorted(set(range(size)) - set(reach))
    if missing:
        violations.append(Violation(
            case, "match",
            f"dissemination never reaches offset(s) {missing} "
            f"(ranks initiator+offset)",
        ))
    for offset, sources in sorted(parents.items()):
        if len(sources) > 1:
            violations.append(Violation(
                case, "match",
                f"offset {offset} is activated by {len(sources)} senders "
                f"{sorted(sources)}; racing first-activations make the "
                f"forward set delivery-order dependent",
            ))

    if size <= explore_limit and not missing:
        # First-activation exploration: state = the class each offset was
        # first activated at (None = not yet).  Any in-flight message may
        # be delivered next; delivery to an already-activated offset is
        # dropped (the progress thread drains stale activations).
        initial = tuple(
            -1 if d == 0 else None for d in range(size)
        )
        seen_states = {initial}
        stack = [initial]
        while stack:
            state = stack.pop()
            moves = []
            for offset, k in enumerate(state):
                if k is None:
                    continue
                for target, j in forwards(offset, k):
                    if state[target] is None:
                        moves.append((target, j))
            if not moves:
                dead = sorted(d for d, k in enumerate(state) if k is None)
                if dead:
                    violations.append(Violation(
                        case, "deadlock",
                        f"delivery order {state} strands offset(s) {dead} "
                        f"unactivated",
                    ))
                continue
            for target, j in moves:
                nxt = list(state)
                nxt[target] = j
                nxt_t = tuple(nxt)
                if nxt_t not in seen_states:
                    seen_states.add(nxt_t)
                    stack.append(nxt_t)
    return CaseResult(case, size, violations)


def check_solo_schedule(size: int, rounds: Tuple[int, ...] = (0, 1, 7)) -> CaseResult:
    """Static match/tag check of the persistent solo-allreduce schedules.

    Builds the Fig. 6 schedule for every rank and proves that each
    potential send names a receive posted at its destination (and vice
    versa), and that every tag lies in the solo regions of the tag map.
    Power-of-two sizes only (the schedule-based recursive doubling is
    restricted to them by construction).
    """
    case = f"solo-schedule[P={size}]"
    violations: List[Violation] = []
    from repro.schedule.ops import RecvOp, SendOp

    for round_index in rounds:
        sends: set = set()
        recvs: set = set()
        for rank in range(size):
            sched = build_solo_allreduce_schedule(rank, size, round_index)
            for op in sched.ops.values():
                if isinstance(op, SendOp):
                    sends.add((rank, op.dest, op.tag))
                    reg = tags.region_of(op.tag)
                    if reg is None or reg.name not in (
                        tags.SOLO_ACTIVATION.name, tags.SOLO_REDUCTION.name
                    ):
                        violations.append(Violation(
                            case, "tags",
                            f"round {round_index}: schedule tag {op.tag} "
                            f"outside the solo regions",
                        ))
                elif isinstance(op, RecvOp):
                    recvs.add((op.source, rank, op.tag))
        for src, dst, tag in sorted(sends - recvs):
            violations.append(Violation(
                case, "match",
                f"round {round_index}: send {src}->{dst} tag {tag} has no "
                f"posted receive at rank {dst}",
            ))
        for src, dst, tag in sorted(recvs - sends):
            violations.append(Violation(
                case, "match",
                f"round {round_index}: receive at rank {dst} from {src} "
                f"tag {tag} has no possible sender",
            ))
    return CaseResult(case, size, violations)


# ---------------------------------------------------------------------------
# seeded mutants: prove the checkers reject broken schedules
# ---------------------------------------------------------------------------
def _mutant_dropped_recv(size: int = 4) -> VerifyCase:
    """Ring where rank 0 forgets its receive: an orphan send must surface."""
    def fn(comm):
        tag = tags.sync_tag(0, 0, 0, 0)
        comm.send(np.ones(2), (comm.rank + 1) % comm.size, tag=tag)
        if comm.rank != 0:
            comm.recv(source=(comm.rank - 1) % comm.size, tag=tag)
    return VerifyCase(
        name="mutant[dropped-recv]", world_size=size, fn=fn,
        recv_timeout=MUTANT_RECV_TIMEOUT,
    )


def _mutant_reused_tag(size: int = 2) -> VerifyCase:
    """Two sends race for the same (src, dst, tag): ambiguous match."""
    def fn(comm):
        tag = tags.sync_tag(0, 0, 0, 0)
        if comm.rank == 0:
            comm.send(np.zeros(1), 1, tag=tag)
            comm.send(np.ones(1), 1, tag=tag)
        elif comm.rank == 1:
            comm.recv(source=0, tag=tag)
            comm.recv(source=0, tag=tag)
    return VerifyCase(
        name="mutant[reused-tag]", world_size=size, fn=fn,
        recv_timeout=MUTANT_RECV_TIMEOUT,
    )


def _mutant_swapped_neighbor(size: int = 4) -> VerifyCase:
    """Ring that receives from its successor instead of its predecessor.

    Every rank's send goes to the successor, so the posted receives (also
    naming the successor) can never match: all ranks starve and the
    wait-for graph is the ring itself — a deadlock cycle.  (At P=2 the
    predecessor *is* the successor, so the mutant needs P >= 3.)
    """
    if size < 3:
        raise ValueError(f"swapped-neighbor mutant needs P >= 3, got {size}")
    def fn(comm):
        tag = tags.sync_tag(0, 4, 0, 0)
        succ = (comm.rank + 1) % comm.size
        comm.send(np.ones(2), succ, tag=tag)
        comm.recv(source=succ, tag=tag)
    return VerifyCase(
        name="mutant[swapped-neighbor]", world_size=size, fn=fn,
        recv_timeout=MUTANT_RECV_TIMEOUT,
    )


def _mutant_double_count(size: int = 4) -> VerifyCase:
    """Correct schedule, broken arithmetic: rank 0's term counted twice."""
    total = expected_sum(size)
    def fn(comm, _p=size):
        result = sync.allreduce(
            comm, contribution(comm.rank, _p), algorithm="ring"
        )
        if comm.rank == 0:
            result = result + contribution(0, _p)
        return result
    return VerifyCase(
        name="mutant[double-count]", world_size=size, fn=fn,
        expected=lambda rank, _t=total: _t,
        recv_timeout=MUTANT_RECV_TIMEOUT,
    )


def _mutant_user_tag(size: int = 3) -> VerifyCase:
    """A 'collective' minting a raw literal tag outside every region."""
    def fn(comm):
        succ = (comm.rank + 1) % comm.size
        pred = (comm.rank - 1) % comm.size
        comm.send(np.ones(1), succ, tag=7)
        comm.recv(source=pred, tag=7)
    return VerifyCase(
        name="mutant[user-tag]", world_size=size, fn=fn,
        recv_timeout=MUTANT_RECV_TIMEOUT,
    )


#: (mutant factory, checker expected to reject it)
MUTANTS: Tuple[Tuple[Callable[[], VerifyCase], str], ...] = (
    (_mutant_dropped_recv, "match"),
    (_mutant_reused_tag, "match"),
    (_mutant_swapped_neighbor, "deadlock"),
    (_mutant_double_count, "reduction"),
    (_mutant_user_tag, "tags"),
)


def self_test() -> List[CaseResult]:
    """Run every seeded mutant; each must be rejected by its checker."""
    results: List[CaseResult] = []
    for factory, expected_check in MUTANTS:
        case = factory()
        inner = run_case(case)
        hits = [v for v in inner.violations if v.check == expected_check]
        name = f"self-test[{case.name}->{expected_check}]"
        if hits:
            results.append(CaseResult(name, case.world_size,
                                      num_events=inner.num_events))
        else:
            results.append(CaseResult(
                name, case.world_size,
                violations=[Violation(
                    name, "self-test",
                    f"checker {expected_check!r} failed to reject "
                    f"{case.name}; violations seen: "
                    f"{[v.check for v in inner.violations]}",
                )],
                num_events=inner.num_events,
            ))
    return results


# ---------------------------------------------------------------------------
# sweep driver
# ---------------------------------------------------------------------------
def verify(
    world_sizes: Iterable[int] = DEFAULT_WORLD_SIZES,
    include_exchange: bool = True,
    include_self_test: bool = True,
    include_ring_model: bool = True,
    progress: Optional[Callable[[str], None]] = None,
) -> VerificationReport:
    """Run the full verification sweep and return the report."""
    def note(msg: str) -> None:
        if progress is not None:
            progress(msg)

    results: List[CaseResult] = [check_tag_layout()]
    for size in world_sizes:
        note(f"verifying schedules at P={size} ...")
        for case in build_cases(size, include_exchange=include_exchange):
            results.append(run_case(case))
        results.append(check_dissemination(size))
        if size >= 2 and (size & (size - 1)) == 0:
            results.append(check_solo_schedule(size))
    if include_ring_model:
        note("model-checking the shm SPSC ring protocol ...")
        from repro.analysis.ring_model import verify_ring_protocol
        results.extend(verify_ring_protocol())
    if include_self_test:
        note("running checker self-tests (seeded mutants) ...")
        results.extend(self_test())
    return VerificationReport(results)
