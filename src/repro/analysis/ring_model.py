"""Bounded model checker for the shm SPSC ring doorbell protocol.

The shared-memory transport (:mod:`repro.comm.shm_backend`) moves frames
through single-producer/single-consumer byte rings: free-running ``head``
/ ``tail`` counters, data copied *before* the tail is published, and a
flag → re-check → sleep doorbell discipline on both sides (the
``consumer_waiting`` / ``producer_waiting`` header cells plus the
``data_event`` / ``space_event`` doorbells).  Production code backstops
every sleep with a bounded slice (``_WAIT_SLICE``), so a protocol bug
would degrade into latency rather than a visible hang — which is exactly
why testing cannot find one.  This module proves the discipline needs no
timeout at all.

:class:`RingModel` is a faithful abstraction of one ring: the producer
and consumer are small state machines whose steps (copy, publish tail,
set waiting flag, re-check, sleep, ring doorbell, read, advance head)
are individually atomic, and :func:`explore` enumerates **every**
interleaving of those steps by breadth-first search over the joint state
space.  Three properties are checked on every reachable state:

* **no torn frame** — a consumer read observes exactly the byte stream
  the producer copied: a cell whose byte was not yet copied when the
  tail covering it was published is a torn read.
* **no lost wakeup / deadlock** — in every terminal state (no step
  enabled) the producer has published everything and the consumer has
  drained everything.  Sleeps are modelled as *unbounded* waits on a
  sticky doorbell, so a schedule in which one side sleeps through a
  missed doorbell is a reachable deadlock, not a latency blip.
* **bounded counters** — ``head <= tail <= head + capacity`` always.

:func:`verify_ring_protocol` checks the healthy protocol over a grid of
capacities and frame layouts *and* re-runs the exploration on three
seeded protocol mutations — consumer parks without the re-check
(classic lost wakeup), producer never rings the doorbell, tail published
before the copy (torn frame) — asserting each is caught.  A model that
accepts broken protocols proves nothing; the mutations are the model's
own test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

# producer program counters
P_TRY, P_COPY, P_PUB, P_BELL, P_FLAG, P_RECHECK, P_SLEEP, P_DONE = range(8)
# consumer program counters
C_TRY, C_SIG, C_ARM, C_RECHECK, C_SLEEP, C_DONE = range(6)

_P_NAMES = ("p_try", "p_copy", "p_publish", "p_bell", "p_flag", "p_recheck",
            "p_sleep", "p_done")
_C_NAMES = ("c_read", "c_signal", "c_arm", "c_recheck", "c_sleep", "c_done")

#: Sentinel for a ring cell whose byte has not been copied yet.
STALE = -1


@dataclass(frozen=True)
class RingConfig:
    """One model-checking scenario: a ring geometry plus optional bugs.

    ``frame_sizes`` is the byte length of each frame the producer streams
    (doorbells ring at frame boundaries, mirroring ``_send_frame``'s
    one-ring-per-frame rule).  The three mutation flags re-introduce
    bugs the real protocol is built to exclude.
    """

    capacity: int
    frame_sizes: Tuple[int, ...]
    skip_consumer_recheck: bool = False
    skip_doorbell: bool = False
    publish_before_copy: bool = False

    @property
    def label(self) -> str:
        bugs = [
            name
            for name, on in (
                ("skip-recheck", self.skip_consumer_recheck),
                ("skip-doorbell", self.skip_doorbell),
                ("publish-before-copy", self.publish_before_copy),
            )
            if on
        ]
        tag = f",{'+'.join(bugs)}" if bugs else ""
        return (
            f"cap={self.capacity},frames={list(self.frame_sizes)}{tag}"
        )


@dataclass(frozen=True)
class RingState:
    """One joint state of the producer/consumer/ring system.

    ``head`` / ``tail`` are the free-running byte counters of the real
    ring; ``cells`` holds, per buffer slot, the stream index of the byte
    last copied there (:data:`STALE` before any copy).  ``copied`` is the
    producer's private count of bytes whose data is in the buffer —
    ``tail`` trails it in the healthy protocol and leads it under the
    ``publish_before_copy`` mutation.
    """

    head: int
    tail: int
    cells: Tuple[int, ...]
    copied: int
    cwait: int
    pwait: int
    data_ev: int
    space_ev: int
    p_pc: int
    c_pc: int
    pending: int  # bytes of the in-flight write_some span


@dataclass
class ModelViolation:
    """A property violation with the interleaving that reaches it."""

    config: RingConfig
    kind: str  # "torn-frame" | "deadlock" | "bound"
    detail: str
    trace: List[str] = field(default_factory=list)

    def __str__(self) -> str:
        steps = " -> ".join(self.trace) if self.trace else "(initial)"
        return f"[{self.kind}] {self.config.label}: {self.detail}\n  trace: {steps}"


@dataclass
class ExploreResult:
    config: RingConfig
    states: int
    violations: List[ModelViolation]

    @property
    def ok(self) -> bool:
        return not self.violations


def _frame_ends(frame_sizes: Tuple[int, ...]) -> Tuple[int, ...]:
    ends, acc = [], 0
    for s in frame_sizes:
        acc += s
        ends.append(acc)
    return tuple(ends)


def explore(config: RingConfig, max_states: int = 2_000_000) -> ExploreResult:
    """Enumerate every interleaving of the ring protocol under ``config``."""
    if config.capacity < 1:
        raise ValueError(f"ring capacity must be >= 1, got {config.capacity}")
    if any(s < 1 for s in config.frame_sizes):
        raise ValueError(
            f"frame sizes must be >= 1, got {list(config.frame_sizes)}"
        )
    cap = config.capacity
    total = sum(config.frame_sizes)
    frame_ends = set(_frame_ends(config.frame_sizes))

    initial = RingState(
        head=0, tail=0, cells=(STALE,) * cap, copied=0,
        cwait=0, pwait=0, data_ev=0, space_ev=0,
        p_pc=P_TRY, c_pc=C_TRY, pending=0,
    )
    violations: List[ModelViolation] = []
    # parent pointers for counterexample traces
    parent: Dict[RingState, Tuple[Optional[RingState], str]] = {initial: (None, "")}

    def trace_to(state: RingState, last: str) -> List[str]:
        steps = [last]
        node = state
        while True:
            prev, label = parent[node]
            if prev is None:
                break
            steps.append(label)
            node = prev
        steps.reverse()
        return steps

    def report(kind: str, detail: str, state: RingState, step: str) -> None:
        if len(violations) < 8:
            violations.append(
                ModelViolation(config, kind, detail, trace_to(state, step))
            )

    def successors(s: RingState) -> List[Tuple[str, RingState]]:
        out: List[Tuple[str, RingState]] = []

        # ----------------------------------------------------- producer
        if s.p_pc == P_TRY:
            if s.copied >= total and s.tail >= total:
                out.append(("p_done", _r(s, p_pc=P_DONE)))
            else:
                free = cap - (s.tail - s.head)
                if free > 0:
                    out.append(("p_try", _r(s, p_pc=P_COPY)))
                else:
                    # Full ring: the one mid-frame point that must wake
                    # the consumer (``_write_all``'s full-ring doorbell).
                    ev = s.data_ev or (s.cwait and not config.skip_doorbell)
                    out.append(("p_full", _r(s, data_ev=int(ev), p_pc=P_FLAG)))
        elif s.p_pc == P_COPY:
            # At entry ``tail == copied`` (the previous span committed).
            free = cap - (s.tail - s.head)
            if free <= 0:
                out.append(("p_copy_retry", _r(s, p_pc=P_TRY)))
            else:
                span = min(free, total - s.copied)
                if config.publish_before_copy:
                    # Mutated order: tail published now, data copied in a
                    # later step — the window a concurrent read turns
                    # into a torn frame.
                    out.append(("p_publish_early", _r(
                        s, tail=s.tail + span, pending=span, p_pc=P_PUB,
                    )))
                else:
                    cells = list(s.cells)
                    for i in range(span):
                        cells[(s.copied + i) % cap] = s.copied + i
                    out.append(("p_copy", _r(
                        s, cells=tuple(cells), copied=s.copied + span,
                        pending=span, p_pc=P_PUB,
                    )))
        elif s.p_pc == P_PUB:
            if config.publish_before_copy:
                cells = list(s.cells)
                for i in range(s.pending):
                    cells[(s.copied + i) % cap] = s.copied + i
                out.append(("p_copy_late", _r(
                    s, cells=tuple(cells), copied=s.copied + s.pending,
                    p_pc=P_BELL,
                )))
            else:
                out.append(("p_publish", _r(
                    s, tail=s.tail + s.pending, p_pc=P_BELL,
                )))
        elif s.p_pc == P_BELL:
            # ``_send_frame`` rings once per frame, after the last byte,
            # as a step separate from the publish (the consumer may arm
            # in between — its re-check is what keeps that safe).
            crossed = any(s.tail - s.pending < end <= s.tail
                          for end in frame_ends)
            ev = s.data_ev
            if crossed and s.cwait and not config.skip_doorbell:
                ev = 1
            out.append(("p_bell", _r(
                s, data_ev=ev, pending=0, p_pc=P_TRY,
            )))
        elif s.p_pc == P_FLAG:
            out.append(("p_flag", _r(s, pwait=1, p_pc=P_RECHECK)))
        elif s.p_pc == P_RECHECK:
            # The producer-side re-check mirrors ``_write_all``: flag,
            # re-check writable, only then sleep.  (The symmetric
            # consumer-side mutation is the interesting one; the producer
            # re-check is kept faithful in every config.)
            if cap - (s.tail - s.head) > 0:
                out.append(("p_recheck_hit", _r(s, pwait=0, p_pc=P_TRY)))
            else:
                out.append(("p_recheck_miss", _r(s, p_pc=P_SLEEP)))
        elif s.p_pc == P_SLEEP:
            if s.space_ev:
                out.append(("p_wake", _r(
                    s, space_ev=0, pwait=0, p_pc=P_TRY,
                )))

        # ----------------------------------------------------- consumer
        if s.c_pc == C_TRY:
            span = s.tail - s.head
            if span > 0:
                bad = None
                for i in range(span):
                    want = s.head + i
                    got = s.cells[want % cap]
                    if got != want:
                        bad = (want, got)
                        break
                if bad is not None:
                    return [("c_read_torn", None)]  # violation marker
                out.append(("c_read", _r(s, head=s.head + span, c_pc=C_SIG)))
            elif s.head >= total:
                out.append(("c_done", _r(s, c_pc=C_DONE)))
            else:
                # Observing emptiness and arming the waiting flag are
                # distinct steps, as in ``_park`` (the pump pass saw
                # nothing, *then* the flags go up): a publish can land in
                # between, which is exactly why the armed re-check exists.
                out.append(("c_empty", _r(s, c_pc=C_ARM)))
        elif s.c_pc == C_SIG:
            ev = s.space_ev or s.pwait
            out.append(("c_signal", _r(s, space_ev=int(ev), c_pc=C_TRY)))
        elif s.c_pc == C_ARM:
            out.append(("c_arm", _r(s, cwait=1, c_pc=C_RECHECK)))
        elif s.c_pc == C_RECHECK:
            if config.skip_consumer_recheck:
                out.append(("c_park_blind", _r(s, c_pc=C_SLEEP)))
            elif s.tail != s.head:
                out.append(("c_recheck_hit", _r(s, cwait=0, c_pc=C_TRY)))
            else:
                out.append(("c_recheck_miss", _r(s, c_pc=C_SLEEP)))
        elif s.c_pc == C_SLEEP:
            if s.data_ev:
                out.append(("c_wake", _r(s, data_ev=0, cwait=0, c_pc=C_TRY)))

        return out

    frontier = [initial]
    seen = {initial}
    states = 0
    while frontier:
        s = frontier.pop()
        states += 1
        if states > max_states:
            raise RuntimeError(
                f"ring model exceeded {max_states} states for {config.label}; "
                f"shrink the capacity/frame grid"
            )
        if not (s.head <= s.tail <= s.head + cap):
            report("bound", f"head={s.head} tail={s.tail} cap={cap}", s, "(state)")
            continue
        succ = successors(s)
        if succ and succ[0][1] is None:
            span = s.tail - s.head
            torn = [
                (s.head + i, s.cells[(s.head + i) % cap])
                for i in range(span)
                if s.cells[(s.head + i) % cap] != s.head + i
            ]
            report(
                "torn-frame",
                f"read of bytes [{s.head}, {s.tail}) observes "
                f"{torn[0][1] if torn else '?'} at stream index {torn[0][0]}: "
                f"tail published before the data was copied",
                s, "c_read",
            )
            continue
        if not succ:
            done = s.p_pc == P_DONE and s.c_pc == C_DONE
            if not done:
                who = []
                if s.p_pc != P_DONE:
                    who.append(f"producer at {_P_NAMES[s.p_pc]} "
                               f"(published {s.tail}/{total})")
                if s.c_pc != C_DONE:
                    who.append(f"consumer at {_C_NAMES[s.c_pc]} "
                               f"(drained {s.head}/{total})")
                report(
                    "deadlock",
                    "terminal state with work remaining — lost wakeup: "
                    + "; ".join(who),
                    s, "(terminal)",
                )
            continue
        for label, nxt in succ:
            if nxt not in seen:
                seen.add(nxt)
                parent[nxt] = (s, label)
                frontier.append(nxt)
    return ExploreResult(config=config, states=states, violations=violations)


def _r(s: RingState, **changes) -> RingState:
    fields = dict(
        head=s.head, tail=s.tail, cells=s.cells, copied=s.copied,
        cwait=s.cwait, pwait=s.pwait, data_ev=s.data_ev,
        space_ev=s.space_ev, p_pc=s.p_pc, c_pc=s.c_pc, pending=s.pending,
    )
    fields.update(changes)
    return RingState(**fields)


#: Healthy geometries: capacity 1 forces the full-ring doorbell path on
#: every byte; the larger rings exercise wrap-around and multi-byte spans.
HEALTHY_CONFIGS: Tuple[RingConfig, ...] = (
    RingConfig(capacity=1, frame_sizes=(1, 1, 1)),
    RingConfig(capacity=1, frame_sizes=(2, 1)),
    RingConfig(capacity=2, frame_sizes=(1, 2, 1)),
    RingConfig(capacity=2, frame_sizes=(3,)),
    RingConfig(capacity=3, frame_sizes=(2, 2, 2)),
    RingConfig(capacity=3, frame_sizes=(1, 3, 1)),
)

#: Each protocol mutation paired with the violation it must produce.
MUTATION_CONFIGS: Tuple[Tuple[RingConfig, str], ...] = (
    (RingConfig(capacity=2, frame_sizes=(1, 2, 1),
                skip_consumer_recheck=True), "deadlock"),
    (RingConfig(capacity=1, frame_sizes=(2, 1),
                skip_doorbell=True), "deadlock"),
    (RingConfig(capacity=2, frame_sizes=(1, 2, 1),
                publish_before_copy=True), "torn-frame"),
)


def verify_ring_protocol():
    """Model-check the healthy protocol and the seeded mutations.

    Returns ``CaseResult`` rows (the schedule verifier's report type):
    one per healthy geometry (must be violation-free) and one per
    mutation (must be caught with the expected violation kind).
    """
    from repro.analysis.schedule_verifier import CaseResult, Violation

    results: List[CaseResult] = []
    for config in HEALTHY_CONFIGS:
        res = explore(config)
        name = f"ring-model[{config.label}]"
        results.append(CaseResult(
            name=name,
            world_size=2,
            violations=[
                Violation(name, "deadlock" if v.kind != "torn-frame" else "match",
                          str(v))
                for v in res.violations
            ],
            num_events=res.states,
        ))
    for config, expected_kind in MUTATION_CONFIGS:
        res = explore(config)
        name = f"ring-model-self-test[{config.label}->{expected_kind}]"
        hits = [v for v in res.violations if v.kind == expected_kind]
        if hits:
            results.append(CaseResult(name, 2, num_events=res.states))
        else:
            results.append(CaseResult(
                name, 2,
                violations=[Violation(
                    name, "self-test",
                    f"mutation {config.label} was not caught as "
                    f"{expected_kind!r}; saw {[v.kind for v in res.violations]}",
                )],
                num_events=res.states,
            ))
    return results
