"""Static analysis and verification of the communication layer.

Three tools, one goal: catch schedule and protocol bugs *before* they
need a 512-rank deployment and a lucky race to reproduce.

* :mod:`repro.analysis.schedule_verifier` — records every registered
  collective's global send/recv multigraph on a per-rank recording
  communicator (:mod:`repro.analysis.recording`) and proves
  match-completeness, tag-space soundness, deadlock freedom and exact
  reduction coverage, swept over world sizes and host topologies.
* :mod:`repro.analysis.ring_model` — bounded model checker of the
  shared-memory SPSC ring doorbell protocol: explores every
  interleaving of the producer/consumer step machines and proves no
  torn frame and no lost wakeup.
* :mod:`repro.analysis.lint` — repo-specific AST lint for invariants a
  generic linter cannot know (tag discipline, shm cleanup, zero-copy
  framing, silent array copies, actionable ValueErrors).

``python -m repro verify`` and ``python -m repro lint`` are the entry
points; both are CI gates.
"""

from repro.analysis.lint import LintFinding, lint_paths, lint_source
from repro.analysis.recording import (
    CommEvent,
    RecordingCommunicator,
    RecordingWorld,
    RunRecord,
    record_run,
)
from repro.analysis.ring_model import (
    ExploreResult,
    RingConfig,
    explore,
    verify_ring_protocol,
)
from repro.analysis.schedule_verifier import (
    CaseResult,
    VerificationReport,
    VerifyCase,
    Violation,
    build_cases,
    check_deadlock_freedom,
    check_dissemination,
    check_match_completeness,
    check_reduction_coverage,
    check_solo_schedule,
    check_tag_layout,
    check_tag_soundness,
    run_case,
    self_test,
    verify,
)

__all__ = [
    "LintFinding",
    "lint_paths",
    "lint_source",
    "CommEvent",
    "RecordingCommunicator",
    "RecordingWorld",
    "RunRecord",
    "record_run",
    "ExploreResult",
    "RingConfig",
    "explore",
    "verify_ring_protocol",
    "CaseResult",
    "VerificationReport",
    "VerifyCase",
    "Violation",
    "build_cases",
    "check_deadlock_freedom",
    "check_dissemination",
    "check_match_completeness",
    "check_reduction_coverage",
    "check_solo_schedule",
    "check_tag_layout",
    "check_tag_soundness",
    "run_case",
    "self_test",
    "verify",
]
