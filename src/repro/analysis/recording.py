"""Recording communicator: run a collective, capture its message graph.

The schedule verifier needs the *global send/recv multigraph* of a
collective — who sends what tag to whom, and which receive consumes which
send — without caring about payload bandwidth.  This module provides a
:class:`RecordingWorld` of :class:`RecordingCommunicator` endpoints
(satisfying :class:`repro.comm.backend.CommunicatorLike`) that execute
the *real* collective code per rank on an in-process router, while
logging every send and receive as a :class:`CommEvent`.

Payloads are tiny integer certificate vectors (a few dozen elements),
so a full sweep over every registered schedule at P up to 64 runs in
seconds; the graph properties (match-completeness, tag soundness,
deadlock freedom) are read off the event log alone, and the certificates
prove reduction coverage exactly (integer ``float64`` arithmetic below
``2**53`` is exact).

Receives carry a short timeout: a deliberately broken schedule does not
hang the verifier — the starved receive is logged (kind ``"starved"``)
and the checkers classify it as a deadlock cycle or a lost message.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.collectives.topology import HostTopology
from repro.comm.communicator import Communicator
from repro.comm.message import ANY_SOURCE, ANY_TAG, Message
from repro.comm.requests import SendRequest
from repro.comm.router import Channel, DEFAULT_CHANNELS, Router


class RecvStarvedError(RuntimeError):
    """A recorded receive timed out: the matching send never arrived."""


@dataclass(frozen=True)
class CommEvent:
    """One recorded communication action of one rank.

    ``kind`` is ``"send"``, ``"recv"`` or ``"starved"``.  ``peer`` is the
    destination rank of a send, the *matched* source of a receive, and
    the awaited source of a starved receive.  ``seq`` is the router's
    globally unique message id — a receive carries the seq of the send it
    consumed, which is what turns the log into an exact send↔recv
    pairing.  ``order`` is the per-rank program index (total order within
    the rank), the program-order edges of the deadlock check.
    """

    kind: str
    rank: int
    order: int
    channel: str
    peer: int
    tag: int
    seq: int
    elements: int


@dataclass
class RunRecord:
    """Everything one recorded run produced."""

    world_size: int
    events: List[CommEvent]
    results: List[Any]
    errors: List[Optional[BaseException]]

    def sends(self) -> List[CommEvent]:
        return [e for e in self.events if e.kind == "send"]

    def recvs(self) -> List[CommEvent]:
        return [e for e in self.events if e.kind == "recv"]

    def starved(self) -> List[CommEvent]:
        return [e for e in self.events if e.kind == "starved"]

    @property
    def crashed(self) -> List[Tuple[int, BaseException]]:
        """Rank failures that are *not* recorded starvations."""
        return [
            (rank, err)
            for rank, err in enumerate(self.errors)
            if err is not None and not isinstance(err, RecvStarvedError)
        ]


def _payload_elements(payload: Any) -> int:
    if isinstance(payload, np.ndarray):
        return int(payload.size)
    return 0


class RecordingCommunicator(Communicator):
    """A :class:`Communicator` that logs every send/recv it performs.

    Behaviour is identical to the thread transport (same router, same
    mailboxes, same eager-send semantics), so the schedule that runs here
    is byte-for-byte the schedule that runs in production — only with an
    event log on the side and a short receive timeout instead of the
    2-minute production safety net.
    """

    def __init__(
        self,
        world: "RecordingWorld",
        rank: int,
        channel: str = Channel.APP,
    ) -> None:
        super().__init__(
            world.router, rank, channel=channel,
            default_timeout=world.recv_timeout,
        )
        self._world = world

    # ------------------------------------------------------------- record
    def _record(self, kind: str, peer: int, tag: int, seq: int, elements: int) -> None:
        self._world.record(
            CommEvent(
                kind=kind,
                rank=self._rank,
                order=self._world.next_order(self._rank),
                channel=self._channel,
                peer=peer,
                tag=tag,
                seq=seq,
                elements=elements,
            )
        )

    # --------------------------------------------------------------- send
    def send(self, payload: Any, dest: int, tag: int = 0) -> None:
        dest = int(dest)
        msg = Message(
            source=self._rank, dest=dest, tag=int(tag),
            payload=self._outgoing(payload, dest),
        )
        self._router.deliver(msg, self._channel)
        self._record("send", dest, int(tag), msg.seq, _payload_elements(payload))

    def isend(self, payload: Any, dest: int, tag: int = 0) -> SendRequest:
        dest = int(dest)
        msg = Message(
            source=self._rank, dest=dest, tag=int(tag),
            payload=self._outgoing(payload, dest),
        )
        self._router.deliver(msg, self._channel)
        self._record("send", dest, int(tag), msg.seq, _payload_elements(payload))
        return SendRequest(msg)

    # --------------------------------------------------------------- recv
    def recv_message(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        timeout: Optional[float] = None,
    ) -> Message:
        effective = self.default_timeout if timeout is None else min(
            timeout, self.default_timeout or timeout
        )
        try:
            msg = self._mailbox.get(source, tag, timeout=effective)
        except TimeoutError:
            self._record("starved", source, int(tag), -1, 0)
            raise RecvStarvedError(
                f"rank {self._rank}/{self._channel}: no matching send for "
                f"recv(source={source}, tag={tag}) within {effective}s"
            ) from None
        self._record(
            "recv", msg.source, msg.tag, msg.seq, _payload_elements(msg.payload)
        )
        return msg

    def poll(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Optional[Any]:
        msg = self._mailbox.poll(source, tag)
        if msg is None:
            return None
        self._record(
            "recv", msg.source, msg.tag, msg.seq, _payload_elements(msg.payload)
        )
        return msg.payload

    # ---------------------------------------------------------------- dup
    def dup(self, channel: Optional[str] = None) -> "RecordingCommunicator":
        return RecordingCommunicator(
            self._world, self._rank, channel=channel or self._channel
        )


class RecordingWorld:
    """A thread-per-rank world whose communicators log every message.

    Parameters
    ----------
    world_size:
        Number of ranks.
    channels:
        Router channels to create (the production default set).
    host_topology:
        When given, exposed as ``router.host_topology`` so hierarchical
        collectives discover it exactly the way they discover the ``hier``
        backend's topology.
    recv_timeout:
        Per-receive timeout; broken schedules surface as recorded
        starvation after this many seconds instead of hanging.
    """

    def __init__(
        self,
        world_size: int,
        channels: Sequence[str] = DEFAULT_CHANNELS,
        host_topology: Optional[HostTopology] = None,
        recv_timeout: float = 30.0,
    ) -> None:
        self.world_size = int(world_size)
        self.router = Router(self.world_size, channels)
        if host_topology is not None:
            self.router.host_topology = host_topology
        self.recv_timeout = float(recv_timeout)
        self.events: List[CommEvent] = []
        self._lock = threading.Lock()
        self._orders = [0] * self.world_size

    # ---------------------------------------------------------- recording
    def record(self, event: CommEvent) -> None:
        with self._lock:
            self.events.append(event)

    def next_order(self, rank: int) -> int:
        with self._lock:
            order = self._orders[rank]
            self._orders[rank] = order + 1
            return order

    # -------------------------------------------------------------- world
    def communicator(
        self, rank: int, channel: str = Channel.APP
    ) -> RecordingCommunicator:
        return RecordingCommunicator(self, rank, channel=channel)

    def run(self, fn: Callable[[RecordingCommunicator], Any]) -> RunRecord:
        """Run ``fn(comm)`` on every rank (one thread each) and record.

        Exceptions — including :class:`RecvStarvedError` from timed-out
        receives — are captured per rank, never raised: the checkers
        decide what a failure means.
        """
        results: List[Any] = [None] * self.world_size
        errors: List[Optional[BaseException]] = [None] * self.world_size

        def worker(rank: int) -> None:
            try:
                results[rank] = fn(self.communicator(rank))
            except BaseException as exc:  # noqa: BLE001 - recorded, not raised
                errors[rank] = exc

        threads = [
            threading.Thread(target=worker, args=(rank,), name=f"verify-rank-{rank}")
            for rank in range(self.world_size)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        with self._lock:
            events = list(self.events)
        return RunRecord(
            world_size=self.world_size,
            events=events,
            results=results,
            errors=errors,
        )


def record_run(
    fn: Callable[[RecordingCommunicator], Any],
    world_size: int,
    host_topology: Optional[HostTopology] = None,
    recv_timeout: float = 30.0,
) -> RunRecord:
    """Convenience wrapper: build a world, run ``fn`` on every rank."""
    world = RecordingWorld(
        world_size, host_topology=host_topology, recv_timeout=recv_timeout
    )
    return world.run(fn)
