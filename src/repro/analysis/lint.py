"""Repo-specific AST lint: rules a generic linter cannot know.

Each rule encodes an invariant of *this* codebase — conventions whose
violation has already caused (or would cause) a real bug, but which look
like perfectly ordinary Python to flake8-style tools:

``literal-tag``
    No integer-literal tags to ``send``/``recv``-family calls outside
    :mod:`repro.comm.tags`.  Raw tag constants are how two subsystems end
    up colliding in the same tag range; every reserved tag must be minted
    through the layout helpers.  Literal ``0`` (the default/user tag) and
    ``-1`` (``ANY_TAG``) are allowed.

``shm-unlink``
    A module that creates POSIX shared memory
    (``SharedMemory(..., create=True)``) must also call ``.unlink()``
    somewhere: segments outlive the process and leak in ``/dev/shm``
    otherwise.

``pickle-ndarray``
    In the framing transports, ``pickle.dumps`` of an array-ish value
    (``payload``, ``buf``, ``grad``, ...) is only allowed in functions
    that dispatch on ``isinstance(x, np.ndarray)`` first — arrays must
    take the zero-copy framed path, not the pickle path (a pickled array
    is a silent 3-5x slowdown that still works, the worst kind of bug).

``silent-array-copy``
    In hot-path packages, ``np.array(x)`` without an explicit ``copy=``
    argument silently duplicates ``x`` when it is already an ndarray.
    Write ``np.asarray(x)`` (no copy) or ``np.array(x, copy=True)``
    (copy on purpose).  Display literals (``np.array([1, 2])``) cannot
    alias an existing array and are exempt.

``valueerror-no-value``
    A ``raise ValueError(...)`` whose message is a plain constant cannot
    name the offending value; interpolate the value (f-string, format,
    concatenation) so the error is actionable at a P=512 deployment, not
    just in a unit test.

``time-time``
    No ``time.time()`` in the timing-sensitive packages (comm,
    collectives, training, serving).  Wall clocks step and smear under
    NTP, which shears interval measurements and trace timestamps; use
    ``time.perf_counter()`` / ``time.perf_counter_ns()``
    (``CLOCK_MONOTONIC``) for intervals, as the flight recorder does.

Entry point: ``python -m repro lint [paths...]`` (see :mod:`repro.cli`);
:func:`lint_paths` is the API.  Scope control lives in
:data:`RULE_SCOPES` — rules apply only where their invariant holds, so a
clean run means something.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

#: send/recv-family method names whose ``tag`` argument is checked.
_TAGGED_CALLS = frozenset({
    "send", "isend", "recv", "recv_message", "irecv", "probe", "poll",
})
#: ``tag`` positional index per callable (after ``self``): send(payload,
#: dest, tag), recv(source, tag), ...
_TAG_POSITION = {
    "send": 2, "isend": 2,
    "recv": 1, "recv_message": 1, "irecv": 1, "probe": 1, "poll": 1,
}
#: Tag literals that are always fine: default user tag and ANY_TAG.
_ALLOWED_TAG_LITERALS = frozenset({0, -1})

#: Variable names treated as "probably an ndarray" by ``pickle-ndarray``.
_ARRAYISH_NAMES = frozenset({
    "payload", "data", "arr", "array", "grad", "gradient", "buf", "buffer",
})


@dataclass(frozen=True)
class LintFinding:
    """One rule violation at one source location."""

    path: str
    line: int
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------
def _call_name(node: ast.Call) -> Optional[str]:
    """Trailing attribute/function name of a call, e.g. ``comm.send`` -> ``send``."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _is_int_literal(node: ast.AST) -> Optional[int]:
    if isinstance(node, ast.Constant) and type(node.value) is int:
        return node.value
    if (
        isinstance(node, ast.UnaryOp)
        and isinstance(node.op, ast.USub)
        and isinstance(node.operand, ast.Constant)
        and type(node.operand.value) is int
    ):
        return -node.operand.value
    return None


def _enclosing_functions(tree: ast.AST) -> List[ast.AST]:
    return [
        node for node in ast.walk(tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]


# ---------------------------------------------------------------------------
# rules
# ---------------------------------------------------------------------------
def rule_literal_tag(path: str, tree: ast.AST, source: str) -> List[LintFinding]:
    findings: List[LintFinding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        name = _call_name(node)
        if name not in _TAGGED_CALLS:
            continue
        tag_arg: Optional[ast.AST] = None
        for kw in node.keywords:
            if kw.arg == "tag":
                tag_arg = kw.value
        if tag_arg is None:
            pos = _TAG_POSITION[name]
            if len(node.args) > pos:
                tag_arg = node.args[pos]
        if tag_arg is None:
            continue
        value = _is_int_literal(tag_arg)
        if value is not None and value not in _ALLOWED_TAG_LITERALS:
            findings.append(LintFinding(
                path, tag_arg.lineno, "literal-tag",
                f"literal tag {value} passed to {name}(); mint reserved tags "
                f"through repro.comm.tags helpers so ranges stay disjoint",
            ))
    return findings


def rule_shm_unlink(path: str, tree: ast.AST, source: str) -> List[LintFinding]:
    creates: List[ast.Call] = []
    has_unlink = False
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            name = _call_name(node)
            if name == "SharedMemory" and any(
                kw.arg == "create"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is True
                for kw in node.keywords
            ):
                creates.append(node)
            elif name == "unlink":
                has_unlink = True
    if creates and not has_unlink:
        return [LintFinding(
            path, creates[0].lineno, "shm-unlink",
            "SharedMemory(create=True) without any .unlink() call in this "
            "module: the segment leaks in /dev/shm after the process exits",
        )]
    return []


def rule_pickle_ndarray(path: str, tree: ast.AST, source: str) -> List[LintFinding]:
    findings: List[LintFinding] = []

    def has_ndarray_dispatch(fn: ast.AST) -> bool:
        for node in ast.walk(fn):
            if (
                isinstance(node, ast.Call)
                and _call_name(node) == "isinstance"
                and len(node.args) == 2
            ):
                target = node.args[1]
                names = [target] + (
                    list(target.elts) if isinstance(target, ast.Tuple) else []
                )
                for cand in names:
                    if isinstance(cand, ast.Attribute) and cand.attr == "ndarray":
                        return True
        return False

    for fn in _enclosing_functions(tree):
        guarded = has_ndarray_dispatch(fn)
        for node in ast.walk(fn):
            if not (isinstance(node, ast.Call) and _call_name(node) == "dumps"):
                continue
            if not (
                isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == "pickle"
            ):
                continue
            for arg in node.args[:1]:
                argname = None
                if isinstance(arg, ast.Name):
                    argname = arg.id
                elif isinstance(arg, ast.Attribute):
                    argname = arg.attr
                if argname in _ARRAYISH_NAMES and not guarded:
                    findings.append(LintFinding(
                        path, node.lineno, "pickle-ndarray",
                        f"pickle.dumps({argname}) in a framing transport "
                        f"without an isinstance(..., np.ndarray) dispatch: "
                        f"arrays must take the zero-copy framed path",
                    ))
    return findings


def rule_silent_array_copy(path: str, tree: ast.AST, source: str) -> List[LintFinding]:
    findings: List[LintFinding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr == "array"
            and isinstance(func.value, ast.Name)
            and func.value.id == "np"
        ):
            continue
        if any(kw.arg == "copy" for kw in node.keywords):
            continue
        # A display literal cannot alias an existing array: np.array([...])
        # always allocates and is the idiomatic constructor.
        if node.args and isinstance(node.args[0], (ast.List, ast.Tuple)):
            continue
        findings.append(LintFinding(
            path, node.lineno, "silent-array-copy",
            "np.array(x) without copy= silently duplicates ndarray input in "
            "a hot path; use np.asarray(x) or state copy= explicitly",
        ))
    return findings


def rule_time_time(path: str, tree: ast.AST, source: str) -> List[LintFinding]:
    findings: List[LintFinding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "time"
            and isinstance(func.value, ast.Name)
            and func.value.id == "time"
        ):
            findings.append(LintFinding(
                path, node.lineno, "time-time",
                "time.time() is a steppable wall clock; use "
                "time.perf_counter() / perf_counter_ns() for intervals "
                "and trace timestamps",
            ))
    return findings


def rule_valueerror_no_value(path: str, tree: ast.AST, source: str) -> List[LintFinding]:
    findings: List[LintFinding] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Raise) or node.exc is None:
            continue
        exc = node.exc
        if not (
            isinstance(exc, ast.Call)
            and isinstance(exc.func, ast.Name)
            and exc.func.id == "ValueError"
            and len(exc.args) == 1
        ):
            continue
        msg = exc.args[0]
        constant_str = (
            isinstance(msg, ast.Constant) and isinstance(msg.value, str)
        )
        # Adjacent-literal concatenation parses as a single Constant, so
        # plain strings are the only shape flagged; any JoinedStr
        # (f-string), BinOp (% / +) or .format() call interpolates.
        if constant_str:
            findings.append(LintFinding(
                path, exc.lineno, "valueerror-no-value",
                "ValueError message is a plain constant; interpolate the "
                "offending value so the error is actionable in production",
            ))
    return findings


# ---------------------------------------------------------------------------
# scoping: where each rule's invariant actually holds
# ---------------------------------------------------------------------------
Rule = Callable[[str, ast.AST, str], List[LintFinding]]


def _in_packages(*packages: str) -> Callable[[str], bool]:
    def predicate(relpath: str) -> bool:
        parts = Path(relpath).parts
        return any(pkg in parts for pkg in packages)
    return predicate


def _is_transport(relpath: str) -> bool:
    name = Path(relpath).name
    return name in (
        "process_backend.py", "tcp_backend.py", "shm_backend.py",
        "hier_backend.py",
    )


#: rule -> (callable, file predicate).  ``repro/comm/tags.py`` is the one
#: place allowed to spell raw tag arithmetic, the schedule verifier's
#: seeded mutants *deliberately* mint rogue tags (that is what they test),
#: and test/demo trees are out of scope entirely (lint_paths only walks
#: what it is given).
RULE_SCOPES: Tuple[Tuple[str, Rule, Callable[[str], bool]], ...] = (
    ("literal-tag", rule_literal_tag,
     lambda p: Path(p).name not in ("tags.py", "schedule_verifier.py")),
    ("shm-unlink", rule_shm_unlink, lambda p: True),
    ("pickle-ndarray", rule_pickle_ndarray, _is_transport),
    ("silent-array-copy", rule_silent_array_copy,
     _in_packages("comm", "collectives", "training", "compression")),
    ("valueerror-no-value", rule_valueerror_no_value,
     _in_packages("comm", "collectives", "training", "compression",
                  "tuning", "analysis")),
    ("time-time", rule_time_time,
     _in_packages("comm", "collectives", "training", "serving")),
)


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------
def lint_source(source: str, path: str = "<string>") -> List[LintFinding]:
    """Lint one unit of Python source with every applicable rule."""
    tree = ast.parse(source, filename=path)
    findings: List[LintFinding] = []
    for _name, rule, applies in RULE_SCOPES:
        if applies(path):
            findings.extend(rule(path, tree, source))
    return findings


def iter_python_files(paths: Sequence[str]) -> Iterable[Path]:
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            yield from sorted(p.rglob("*.py"))
        elif p.suffix == ".py":
            yield p


def lint_paths(paths: Sequence[str]) -> List[LintFinding]:
    """Lint every ``.py`` file under ``paths`` (files or directories)."""
    findings: List[LintFinding] = []
    for file in iter_python_files(paths):
        try:
            source = file.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            findings.append(LintFinding(
                str(file), 0, "unreadable", f"cannot lint: {exc}"
            ))
            continue
        try:
            findings.extend(lint_source(source, str(file)))
        except SyntaxError as exc:
            findings.append(LintFinding(
                str(file), exc.lineno or 0, "syntax-error", str(exc.msg)
            ))
    return findings
