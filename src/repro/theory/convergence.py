"""Convergence bounds of eager-SGD (Theorem 5.2 of the paper).

The theorem states that, for an ``L``-smooth lower-bounded objective with
unbiased gradients of bounded second moment ``M^2``, eager-SGD with quorum
size ``Q`` (out of ``P`` processes) and staleness bound ``tau`` reaches an
iterate with squared gradient norm at most ``epsilon`` after
``T = Theta((f(w0) - m) / (epsilon * alpha))`` iterations, provided the
learning rate ``alpha`` is at most

    min( sqrt(eps * P / (12 * L * tau * M * (P - Q))),
         eps * P / (4 * L^3 * tau * M * (P - Q)),
         eps / (12 * M^2 * L) ).

The third term is the classic non-convex SGD learning-rate cap; the first
two shrink as the staleness ``tau`` and the number of missing contributions
``P - Q`` grow — the quantitative version of "more stragglers and staler
gradients demand a smaller learning rate and more iterations".  When
``Q = P`` (a fully synchronous allreduce) the first two terms are vacuous
and the bound reduces to the standard one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence


@dataclass(frozen=True)
class ConvergenceAssumptions:
    """Constants of Assumptions 1 and 2 plus the system parameters.

    Attributes
    ----------
    smoothness:
        ``L`` — the gradient Lipschitz constant.
    second_moment:
        ``M`` — bound on ``sqrt(E[||G||^2])``.
    loss_gap:
        ``f(w_0) - m`` — initial suboptimality (lower bound ``m``).
    num_processes:
        ``P``.
    quorum:
        ``Q`` — minimum number of fresh contributions per round
        (``P`` for synchronous SGD, ``>= P/2`` in expectation for majority,
        ``>= 1`` for solo).
    staleness_bound:
        ``tau`` — maximum number of consecutive rounds an update can be
        rejected before being included.
    """

    smoothness: float
    second_moment: float
    loss_gap: float
    num_processes: int
    quorum: int
    staleness_bound: int

    def validate(self) -> None:
        if self.smoothness <= 0 or self.second_moment <= 0:
            raise ValueError("smoothness L and second moment M must be positive")
        if self.loss_gap < 0:
            raise ValueError("loss gap f(w0) - m must be non-negative")
        if self.num_processes < 1:
            raise ValueError("P must be >= 1")
        if not 1 <= self.quorum <= self.num_processes:
            raise ValueError(f"Q must be in [1, P]={self.num_processes}, got {self.quorum}")
        if self.staleness_bound < 1:
            raise ValueError("staleness bound tau must be >= 1")


def max_learning_rate(assumptions: ConvergenceAssumptions, epsilon: float) -> float:
    """Largest learning rate allowed by Theorem 5.2 for accuracy ``epsilon``."""
    assumptions.validate()
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    L = assumptions.smoothness
    M = assumptions.second_moment
    P = assumptions.num_processes
    Q = assumptions.quorum
    tau = assumptions.staleness_bound
    missing = P - Q
    terms = [epsilon / (12.0 * M * M * L)]
    if missing > 0:
        terms.append(math.sqrt(epsilon * P / (12.0 * L * tau * M * missing)))
        terms.append(epsilon * P / (4.0 * (L**3) * tau * M * missing))
    return min(terms)


def iterations_to_convergence(
    assumptions: ConvergenceAssumptions,
    epsilon: float,
    learning_rate: Optional[float] = None,
) -> int:
    """Iterations ``T = (f(w0) - m) / (epsilon * alpha)`` of Theorem 5.2.

    When ``learning_rate`` is omitted, the theorem's maximal admissible
    learning rate is used (giving the smallest guaranteed ``T``).
    """
    if learning_rate is None:
        learning_rate = max_learning_rate(assumptions, epsilon)
    if learning_rate <= 0:
        raise ValueError("learning_rate must be positive")
    alpha_max = max_learning_rate(assumptions, epsilon)
    if learning_rate > alpha_max:
        raise ValueError(
            f"learning rate {learning_rate:g} exceeds the bound {alpha_max:g} "
            "of Theorem 5.2 for these assumptions"
        )
    if assumptions.loss_gap == 0:
        return 1
    return max(1, math.ceil(assumptions.loss_gap / (epsilon * learning_rate)))


def iteration_lower_bound(assumptions: ConvergenceAssumptions, epsilon: float) -> float:
    """The paper's discussion bound ``T >= Theta((f(w0)-m) tau (P-Q) / (P eps^2))``.

    Shows the linear degradation with the staleness ``tau`` and with the
    number of missed gradients per round ``P - Q``; returns 0 for fully
    synchronous SGD (``Q = P``).
    """
    assumptions.validate()
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    missing = assumptions.num_processes - assumptions.quorum
    return (
        assumptions.loss_gap
        * assumptions.staleness_bound
        * missing
        / (assumptions.num_processes * epsilon**2)
    )


def has_converged(gradient_norms: Sequence[float], epsilon: float) -> bool:
    """Theorem 5.2's success criterion: some iterate has ``||grad||^2 <= eps``."""
    if epsilon <= 0:
        raise ValueError("epsilon must be positive")
    return any(float(g) ** 2 <= epsilon for g in gradient_norms)
