"""Convergence theory (Section 5.1) and staleness/quorum bookkeeping."""

from repro.theory.convergence import (
    ConvergenceAssumptions,
    max_learning_rate,
    iterations_to_convergence,
    iteration_lower_bound,
    has_converged,
)
from repro.theory.staleness import StalenessTracker, QuorumTracker

__all__ = [
    "ConvergenceAssumptions",
    "max_learning_rate",
    "iterations_to_convergence",
    "iteration_lower_bound",
    "has_converged",
    "StalenessTracker",
    "QuorumTracker",
]
