"""Runtime tracking of staleness and quorum sizes.

The convergence guarantees of Section 5.1 are stated in terms of two
quantities the implementation can actually observe:

* the **staleness** of each rank's updates — for how many consecutive
  rounds a freshly computed gradient was left out of the reduction before
  finally being included (the bound ``tau`` of Lemma 5.1, property 4);
* the **quorum size** of each round — how many ranks contributed fresh
  data (the bound ``Q`` of Lemma 5.1, property 3; the "number of active
  processes" of Fig. 9).

The trackers below are fed by the training loop from the
:class:`repro.collectives.partial.PartialAllreduceResult` bookkeeping and
are reported in the experiment harnesses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np


class StalenessTracker:
    """Tracks, per rank, how long gradients wait before being included."""

    def __init__(self) -> None:
        self._current_streak = 0
        self._streaks: List[int] = []
        self.rounds = 0
        self.included_rounds = 0

    def record(self, included: bool) -> None:
        """Record one round: was this rank's fresh gradient included?"""
        self.rounds += 1
        if included:
            self.included_rounds += 1
            self._streaks.append(self._current_streak)
            self._current_streak = 0
        else:
            self._current_streak += 1

    @property
    def max_staleness(self) -> int:
        """Observed bound ``tau``: the longest exclusion streak."""
        pending = [self._current_streak] if self._current_streak else []
        return max(self._streaks + pending, default=0)

    @property
    def mean_staleness(self) -> float:
        if not self._streaks:
            return float(self._current_streak)
        return float(np.mean(self._streaks))

    @property
    def inclusion_rate(self) -> float:
        """Fraction of rounds in which the fresh gradient was included."""
        return self.included_rounds / self.rounds if self.rounds else 1.0


class QuorumTracker:
    """Tracks the number of active (fresh-contributing) processes per round."""

    def __init__(self, world_size: int) -> None:
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        self.world_size = world_size
        self.naps: List[int] = []

    def record(self, num_active: int) -> None:
        if not 0 <= num_active <= self.world_size:
            raise ValueError(
                f"num_active must be in [0, {self.world_size}], got {num_active}"
            )
        self.naps.append(int(num_active))

    @property
    def min_quorum(self) -> int:
        """Observed ``Q``: the smallest number of fresh contributions."""
        return min(self.naps, default=0)

    @property
    def mean_quorum(self) -> float:
        return float(np.mean(self.naps)) if self.naps else 0.0

    def majority_fraction(self) -> float:
        """Fraction of rounds in which at least half the ranks were active."""
        if not self.naps:
            return 0.0
        half = self.world_size / 2.0
        return float(np.mean([n >= half for n in self.naps]))

    def as_array(self) -> np.ndarray:
        return np.asarray(self.naps, dtype=np.int64)
