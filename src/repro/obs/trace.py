"""Chrome trace-event export for flight-recorder dumps.

The exported object follows the Trace Event Format's "JSON Object
Format" (``{"traceEvents": [...], ...}``), which both Perfetto
(https://ui.perfetto.dev) and the legacy ``chrome://tracing`` load
directly:

* one **process track per rank** (``pid = rank``, named via ``M``
  metadata events) so a P-rank world renders as P aligned timelines;
* recorder threads become named thread tracks (``tid``);
* ``"X"`` complete events carry span start/duration in microseconds;
* ``"i"`` instants and ``"C"`` counters pass through unchanged;
* ``"s"``/``"f"`` flow events with matching ids draw the send→recv
  arrows between rank tracks (``"f"`` binds to its enclosing slice).

Timestamps are ``perf_counter_ns`` readings, which on separate processes
have unrelated epochs; the caller supplies per-rank ``clock_offsets_ns``
(estimated by :mod:`repro.obs.collect`) and the exporter rebases
everything to the earliest aligned event so traces start near t=0.

:func:`validate_chrome_trace` is the structural schema check used by the
tests and the CI ``observability-smoke`` job — it returns a list of
problems (empty = valid) rather than raising, so CI can print all of
them at once.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["to_chrome_trace", "validate_chrome_trace", "write_chrome_trace"]

_VALID_PHASES = frozenset({"X", "i", "I", "C", "s", "f", "t", "M", "B", "E"})


def _region_name(tag: int) -> Optional[str]:
    # Lazy import: the recorder layer stays dependency-free and the
    # region lookup only runs at export time, never on the hot path.
    from repro.comm import tags as tag_table

    try:
        return tag_table.region_of(int(tag)).name
    except (ValueError, KeyError):
        return None


def to_chrome_trace(
    dumps: Sequence[Dict[str, Any]],
    clock_offsets_ns: Optional[Dict[int, int]] = None,
    metadata: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Convert per-rank recorder dumps into one Chrome trace object.

    Parameters
    ----------
    dumps:
        :meth:`repro.obs.recorder.FlightRecorder.dump` snapshots, one
        per rank.
    clock_offsets_ns:
        ``rank -> offset`` such that ``local_ts + offset`` lands on rank
        0's clock; missing ranks default to 0 (correct for same-process
        ranks, which share ``CLOCK_MONOTONIC``).
    metadata:
        Extra entries for the top-level trace object (Perfetto shows
        them in the trace info dialog).
    """
    offsets = clock_offsets_ns or {}

    # Earliest aligned timestamp across all ranks anchors t=0.
    base_ns: Optional[int] = None
    for dump in dumps:
        offset = int(offsets.get(dump["rank"], 0))
        for event in dump["events"]:
            ts = int(event[3]) + offset
            if base_ns is None or ts < base_ns:
                base_ns = ts
    if base_ns is None:
        base_ns = 0

    trace_events: List[Dict[str, Any]] = []
    for dump in dumps:
        rank = int(dump["rank"])
        offset = int(offsets.get(rank, 0))
        threads = {int(ident): str(name) for ident, name in dump["threads"].items()}
        # Stable small tids per rank: the dump's thread idents in sorted
        # order (idents themselves are opaque 64-bit values).
        tid_of = {ident: i for i, ident in enumerate(sorted(threads))}

        trace_events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": rank,
                "tid": 0,
                "args": {"name": f"rank {rank}"},
            }
        )
        for ident, tid in tid_of.items():
            trace_events.append(
                {
                    "ph": "M",
                    "name": "thread_name",
                    "pid": rank,
                    "tid": tid,
                    "args": {"name": threads[ident]},
                }
            )

        for kind, name, cat, ts_ns, dur_ns, args, ident in (
            tuple(ev) for ev in dump["events"]
        ):
            event: Dict[str, Any] = {
                "ph": kind,
                "name": name,
                "cat": cat or "repro",
                "pid": rank,
                "tid": tid_of.get(int(ident), 0),
                "ts": (int(ts_ns) + offset - base_ns) / 1000.0,
            }
            if args:
                args = dict(args)
                if "tag" in args:
                    region = _region_name(args["tag"])
                    if region is not None:
                        args["region"] = region
            if kind == "X":
                event["dur"] = int(dur_ns) / 1000.0
                if args:
                    event["args"] = args
            elif kind == "i":
                event["s"] = "t"
                if args:
                    event["args"] = args
            elif kind == "C":
                event["args"] = args or {"value": 0}
            elif kind in ("s", "f"):
                event["id"] = int((args or {}).get("id", 0))
                if kind == "f":
                    event["bp"] = "e"
            elif args:
                event["args"] = args
            trace_events.append(event)

    trace: Dict[str, Any] = {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "ranks": len(dumps),
            "dropped_events": {
                str(d["rank"]): int(d.get("dropped", 0)) for d in dumps
            },
            "clock_offsets_ns": {str(r): int(o) for r, o in offsets.items()},
        },
    }
    if metadata:
        trace["otherData"].update(metadata)
    return trace


def validate_chrome_trace(trace: Any) -> List[str]:
    """Structural schema check; returns a list of problems (empty = OK)."""
    problems: List[str] = []
    if not isinstance(trace, dict):
        return [f"trace must be a JSON object, got {type(trace).__name__}"]
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["trace lacks a 'traceEvents' list"]
    for i, event in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        ph = event.get("ph")
        if ph not in _VALID_PHASES:
            problems.append(f"{where}: unknown phase {ph!r}")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            problems.append(f"{where}: missing event name")
        for key in ("pid", "tid"):
            if not isinstance(event.get(key), int):
                problems.append(f"{where}: missing integer {key!r}")
        if ph != "M":
            ts = event.get("ts")
            if not isinstance(ts, (int, float)):
                problems.append(f"{where}: missing numeric 'ts'")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: complete event needs dur >= 0")
        if ph in ("s", "f", "t") and not isinstance(event.get("id"), int):
            problems.append(f"{where}: flow event needs an integer 'id'")
        if ph == "C" and not isinstance(event.get("args"), dict):
            problems.append(f"{where}: counter event needs an 'args' object")
    try:
        json.dumps(trace)
    except (TypeError, ValueError) as exc:
        problems.append(f"trace is not JSON-serialisable: {exc}")
    return problems


def write_chrome_trace(path: str, trace: Dict[str, Any]) -> None:
    problems = validate_chrome_trace(trace)
    if problems:
        raise ValueError(
            "refusing to write an invalid trace: " + "; ".join(problems[:5])
        )
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(trace, fh)
