"""Cross-rank telemetry collection over the comm fabric.

After an instrumented run, every rank holds a local flight-recorder dump
stamped with its own ``perf_counter_ns`` readings.  Two things must
happen before those dumps become one aligned timeline:

1. **Clock-offset estimation** (:func:`estimate_clock_offsets`): rank 0
   ping-pongs each peer on the ``telemetry`` tag region and applies the
   classic midpoint estimate — if rank 0 stamps ``t0`` before the ping
   and ``t1`` after the pong, and the peer stamped ``t_peer`` in
   between, then ``offset = (t0 + t1) / 2 - t_peer`` maps the peer's
   clock onto rank 0's (``peer_ts + offset``), with error bounded by
   half the round-trip asymmetry.  Each peer's estimate keeps the round with the smallest
   RTT (least queueing noise).  On a single host all ranks share
   ``CLOCK_MONOTONIC``, so offsets come out near zero — the estimation
   still runs unconditionally, which is what lets the same code align
   process/shm/tcp/hier worlds spanning kernel clocks.
2. **Buffer shipment** (:func:`gather_traces`): each rank ``r > 0``
   ships its dump to rank 0 on ``telemetry_buffer_tag(r)``.

The combined schedule is deterministic SPMD — every rank performs the
same source-explicit sends/recvs in the same order — so the static
schedule verifier can sweep it like any collective:
:func:`telemetry_round_trip` is the verifier-facing wrapper whose rank-0
oracle is the sum of the (known) payloads shipped by every rank.
"""

from __future__ import annotations

from time import perf_counter_ns
from typing import Any, Dict, List, Optional, Tuple

from repro.comm import tags

__all__ = [
    "estimate_clock_offsets",
    "gather_traces",
    "telemetry_round_trip",
]

#: Ping-pong rounds per peer; the minimum-RTT round wins.
DEFAULT_SYNC_ROUNDS = 4


def estimate_clock_offsets(
    comm,
    rounds: int = DEFAULT_SYNC_ROUNDS,
    timeout: Optional[float] = None,
) -> Optional[Dict[int, int]]:
    """Estimate each rank's clock offset relative to rank 0.

    Collective over ``comm`` (all ranks must call it).  Returns
    ``{rank: offset_ns}`` on rank 0 — such that ``peer_ts + offset``
    lands on rank 0's clock — and ``None`` on every other rank.
    """
    if not 1 <= rounds <= tags.TELEMETRY_SYNC_MAX_ROUNDS:
        raise ValueError(
            f"rounds must be in [1, {tags.TELEMETRY_SYNC_MAX_ROUNDS}], got {rounds}"
        )
    rank, size = comm.rank, comm.size
    if rank == 0:
        offsets: Dict[int, int] = {0: 0}
        for peer in range(1, size):
            best_rtt: Optional[int] = None
            best_offset = 0
            for k in range(rounds):
                t0 = perf_counter_ns()
                comm.send(int(k), peer, tag=tags.telemetry_ping_tag(peer, k))
                t_peer = int(
                    comm.recv(
                        source=peer,
                        tag=tags.telemetry_pong_tag(peer, k),
                        timeout=timeout,
                    )
                )
                t1 = perf_counter_ns()
                rtt = t1 - t0
                if best_rtt is None or rtt < best_rtt:
                    best_rtt = rtt
                    best_offset = (t0 + t1) // 2 - t_peer
            offsets[peer] = best_offset
        return offsets
    for k in range(rounds):
        comm.recv(source=0, tag=tags.telemetry_ping_tag(rank, k), timeout=timeout)
        comm.send(perf_counter_ns(), 0, tag=tags.telemetry_pong_tag(rank, k))
    return None


def gather_traces(
    comm,
    payload: Any,
    rounds: int = DEFAULT_SYNC_ROUNDS,
    timeout: Optional[float] = None,
) -> Optional[Tuple[List[Any], Dict[int, int]]]:
    """Clock-sync then gather every rank's ``payload`` onto rank 0.

    Collective over ``comm``.  Rank 0 returns ``(payloads, offsets)``
    with ``payloads[r]`` the object rank ``r`` passed in (rank 0's own
    included) and ``offsets`` the clock-offset map; other ranks ship
    their payload and return ``None``.
    """
    offsets = estimate_clock_offsets(comm, rounds=rounds, timeout=timeout)
    rank, size = comm.rank, comm.size
    if rank == 0:
        payloads: List[Any] = [payload]
        for peer in range(1, size):
            payloads.append(
                comm.recv(
                    source=peer,
                    tag=tags.telemetry_buffer_tag(peer),
                    timeout=timeout,
                )
            )
        assert offsets is not None
        return payloads, offsets
    comm.send(payload, 0, tag=tags.telemetry_buffer_tag(rank))
    return None


def telemetry_round_trip(comm, rounds: int = 2) -> Optional[int]:
    """Verifier-facing telemetry collection schedule.

    Runs the exact clock-sync + buffer-shipment schedule of
    :func:`gather_traces` with a known payload (``rank + 1``), so the
    static schedule verifier can prove the collection match-complete,
    tag-sound and deadlock-free at every world size.  Rank 0 returns the
    sum of all shipped payloads — ``P * (P + 1) / 2`` — as the result
    oracle; other ranks return ``None``.
    """
    result = gather_traces(comm, comm.rank + 1, rounds=rounds)
    if comm.rank == 0:
        payloads, offsets = result
        if sorted(offsets) != list(range(comm.size)):
            raise AssertionError(
                f"clock-offset map covers ranks {sorted(offsets)}, "
                f"expected 0..{comm.size - 1}"
            )
        return int(sum(int(p) for p in payloads))
    return None
