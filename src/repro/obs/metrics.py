"""Metrics registry: counters, gauges, log-bucketed streaming histograms.

Built on the same streaming philosophy as :mod:`repro.utils.stats`
(:class:`~repro.utils.stats.RunningStat` is embedded in every
histogram for exact mean/min/max): all metrics are O(1) per update and
bounded in memory under sustained load, so the serving tier can account
for millions of requests without keeping a raw latency list around.

Log-bucketed histogram
----------------------
:class:`LogHistogram` buckets values geometrically: value ``v`` lands in
bucket ``floor(log(v / min_value) / log(growth))``.  With the default
``growth = 1.015`` adjacent bucket edges are 1.5% apart, so any quantile
read off the bucket (geometric) midpoints is within ±0.75% of the exact
sample quantile — comfortably inside the 1% tolerance the serving tests
assert against ``np.percentile``.  Buckets are held sparsely in a dict;
covering twelve decades (1 ns … 1000 s) costs at most ~1860 occupied
buckets, usually far fewer.

Cross-rank merge
----------------
Histograms merge by adding bucket counts, counters by summing, gauges by
taking the max — the operations :func:`merge_snapshots` applies when
rank snapshots are gathered to rank 0 over the telemetry tag region.

Straggler attribution
---------------------
:func:`straggler_attribution` folds per-rank per-step timings (compute
seconds, bucket-wait seconds, exchange seconds) into per-window shares of
compute vs. wait vs. wire — the "where does the slow rank's time go"
report the paper's imbalance argument calls for.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.utils.stats import RunningStat

__all__ = [
    "Counter",
    "Gauge",
    "LogHistogram",
    "MetricsRegistry",
    "merge_snapshots",
    "straggler_attribution",
]


class Counter:
    """Monotonically increasing counter (thread-safe)."""

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; got increment {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def to_dict(self) -> Dict[str, Any]:
        return {"type": "counter", "value": self._value}


class Gauge:
    """Last-write-wins instantaneous value (thread-safe)."""

    def __init__(self) -> None:
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        return self._value

    def to_dict(self) -> Dict[str, Any]:
        return {"type": "gauge", "value": self._value}


class LogHistogram:
    """Streaming histogram with geometrically spaced buckets.

    Parameters
    ----------
    growth:
        Ratio between adjacent bucket edges.  Quantile error from the
        bucket midpoint is at most ``±(sqrt(growth) - 1)``.
    min_value:
        Smallest resolvable positive value; everything in
        ``[0, min_value]`` shares bucket 0.  Negative values are
        rejected — the histogram tracks durations and sizes.
    """

    def __init__(self, growth: float = 1.015, min_value: float = 1e-9) -> None:
        if growth <= 1.0:
            raise ValueError(f"growth must exceed 1, got {growth}")
        if min_value <= 0.0:
            raise ValueError(f"min_value must be positive, got {min_value}")
        self.growth = float(growth)
        self.min_value = float(min_value)
        self._log_growth = math.log(self.growth)
        self._buckets: Dict[int, int] = {}
        self._stat = RunningStat()
        self._lock = threading.Lock()

    # ---- ingest ------------------------------------------------------
    def _bucket_index(self, value: float) -> int:
        if value <= self.min_value:
            return 0
        return 1 + int(math.floor(math.log(value / self.min_value) / self._log_growth))

    def push(self, value: float) -> None:
        value = float(value)
        if value < 0 or math.isnan(value):
            raise ValueError(f"LogHistogram takes non-negative values, got {value}")
        idx = self._bucket_index(value)
        with self._lock:
            self._buckets[idx] = self._buckets.get(idx, 0) + 1
            self._stat.push(value)

    def extend(self, values: Iterable[float]) -> None:
        for v in values:
            self.push(v)

    # ---- read --------------------------------------------------------
    @property
    def count(self) -> int:
        return self._stat.count

    @property
    def mean(self) -> float:
        return self._stat.mean

    @property
    def min(self) -> float:
        return self._stat.min

    @property
    def max(self) -> float:
        return self._stat.max

    def _bucket_mid(self, idx: int) -> float:
        if idx <= 0:
            return self.min_value
        # Geometric midpoint of [min * g^(i-1), min * g^i).
        return self.min_value * self.growth ** (idx - 0.5)

    def quantile(self, q: float) -> float:
        """Approximate ``q``-quantile (``q`` in [0, 1])."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            n = self._stat.count
            if n == 0:
                return float("nan")
            # Rank convention matching np.percentile's default linear
            # interpolation target index, resolved to the owning bucket.
            rank = q * (n - 1)
            cumulative = 0
            value = self._stat.max
            for idx in sorted(self._buckets):
                cumulative += self._buckets[idx]
                if cumulative > rank:
                    value = self._bucket_mid(idx)
                    break
            # The sample extrema are tracked exactly; clamping removes
            # midpoint bias at the tails (and makes single-valued
            # distributions exact).
            return min(max(value, self._stat.min), self._stat.max)

    def percentile(self, p: float) -> float:
        """Approximate ``p``-th percentile (``p`` in [0, 100])."""
        return self.quantile(p / 100.0)

    # ---- merge / serialise -------------------------------------------
    def merge(self, other: "LogHistogram") -> "LogHistogram":
        if (other.growth, other.min_value) != (self.growth, self.min_value):
            raise ValueError(
                "cannot merge histograms with different bucket layouts: "
                f"growth {self.growth} vs {other.growth}, "
                f"min_value {self.min_value} vs {other.min_value}"
            )
        with self._lock:
            for idx, n in other._buckets.items():
                self._buckets[idx] = self._buckets.get(idx, 0) + n
            stat = self._stat
            ostat = other._stat
            if ostat.count:
                merged = RunningStat()
                merged.count = stat.count + ostat.count
                total = stat.mean * stat.count + ostat.mean * ostat.count
                merged._mean = total / merged.count
                # Chan et al. parallel variance combination.
                delta = ostat.mean - stat.mean
                merged._m2 = (
                    stat._m2 + ostat._m2
                    + delta * delta * stat.count * ostat.count / merged.count
                )
                merged._min = min(stat.min if stat.count else math.inf, ostat.min)
                merged._max = max(stat.max if stat.count else -math.inf, ostat.max)
                self._stat = merged
        return self

    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "type": "histogram",
                "growth": self.growth,
                "min_value": self.min_value,
                "count": self._stat.count,
                "mean": self._stat.mean,
                "min": self._stat.min,
                "max": self._stat.max,
                "buckets": {str(idx): n for idx, n in self._buckets.items()},
            }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "LogHistogram":
        hist = cls(growth=data["growth"], min_value=data["min_value"])
        hist._buckets = {int(idx): int(n) for idx, n in data["buckets"].items()}
        count = int(data["count"])
        if count:
            stat = RunningStat()
            stat.count = count
            stat._mean = float(data["mean"])
            stat._min = float(data["min"])
            stat._max = float(data["max"])
            # m2 is not serialised (std is not needed for merged
            # quantiles); keep it zero and accept std=0 on round-trip.
            hist._stat = stat
        return hist


class MetricsRegistry:
    """Name-keyed metric store with get-or-create accessors."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, name: str, kind: type, factory) -> Any:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = factory()
                self._metrics[name] = metric
            elif not isinstance(metric, kind):
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, not {kind.__name__}"
                )
            return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge, Gauge)

    def histogram(
        self, name: str, growth: float = 1.015, min_value: float = 1e-9
    ) -> LogHistogram:
        return self._get_or_create(
            name, LogHistogram, lambda: LogHistogram(growth, min_value)
        )

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Plain-data view of every metric (picklable, JSON-safe)."""
        with self._lock:
            return {name: metric.to_dict() for name, metric in self._metrics.items()}


def merge_snapshots(
    snapshots: Sequence[Dict[str, Dict[str, Any]]]
) -> Dict[str, Dict[str, Any]]:
    """Merge per-rank registry snapshots into one global view.

    Counters sum, gauges take the max, histograms add bucket counts
    (merged histograms additionally expose ``p50``/``p99`` for direct
    reporting).
    """
    merged: Dict[str, Dict[str, Any]] = {}
    hists: Dict[str, LogHistogram] = {}
    for snap in snapshots:
        for name, data in snap.items():
            kind = data.get("type")
            if name in merged and merged[name]["type"] != kind:
                raise TypeError(
                    f"metric {name!r} has conflicting types across ranks: "
                    f"{merged[name]['type']} vs {kind}"
                )
            if kind == "counter":
                if name not in merged:
                    merged[name] = {"type": "counter", "value": 0.0}
                merged[name]["value"] += data["value"]
            elif kind == "gauge":
                if name not in merged:
                    merged[name] = {"type": "gauge", "value": data["value"]}
                else:
                    merged[name]["value"] = max(merged[name]["value"], data["value"])
            elif kind == "histogram":
                if name not in hists:
                    hists[name] = LogHistogram.from_dict(data)
                    merged[name] = {"type": "histogram"}
                else:
                    hists[name].merge(LogHistogram.from_dict(data))
            else:
                raise ValueError(f"metric {name!r} has unknown type {kind!r}")
    for name, hist in hists.items():
        merged[name] = dict(hist.to_dict())
        merged[name]["p50"] = hist.quantile(0.50)
        merged[name]["p99"] = hist.quantile(0.99)
    return merged


def straggler_attribution(
    per_rank_steps: Sequence[Sequence[Dict[str, float]]],
    window: int = 0,
) -> List[Dict[str, Any]]:
    """Per-rank per-window shares of compute vs. wait vs. wire time.

    Parameters
    ----------
    per_rank_steps:
        ``per_rank_steps[rank]`` is that rank's per-step timing dicts
        with keys ``compute_s``, ``wait_s`` and ``exchange_s`` (the wire
        share is ``exchange_s - wait_s``, clamped at zero: time the
        exchange spent moving/reducing bytes rather than blocked on a
        peer).
    window:
        Steps per attribution window; ``0`` (default) folds the whole
        run into one window per rank.

    Returns one record per (rank, window):
    ``{"rank", "window", "steps", "compute_s", "wait_s", "wire_s",
    "compute_share", "wait_share", "wire_share"}`` with shares summing
    to 1 for non-empty windows.
    """
    if window < 0:
        raise ValueError(f"window must be non-negative, got {window}")
    report: List[Dict[str, Any]] = []
    for rank, steps in enumerate(per_rank_steps):
        steps = list(steps)
        size = window or max(1, len(steps))
        for start in range(0, max(1, len(steps)), size):
            chunk = steps[start : start + size]
            compute = sum(float(s.get("compute_s", 0.0)) for s in chunk)
            wait = sum(float(s.get("wait_s", 0.0)) for s in chunk)
            exchange = sum(float(s.get("exchange_s", 0.0)) for s in chunk)
            wire = max(exchange - wait, 0.0)
            total = compute + wait + wire
            report.append(
                {
                    "rank": rank,
                    "window": start // size,
                    "steps": len(chunk),
                    "compute_s": compute,
                    "wait_s": wait,
                    "wire_s": wire,
                    "compute_share": compute / total if total else 0.0,
                    "wait_share": wait / total if total else 0.0,
                    "wire_share": wire / total if total else 0.0,
                }
            )
            if not steps:
                break
    return report
