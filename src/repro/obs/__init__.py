"""Observability layer: flight recorder, metrics registry, trace export.

``repro.obs`` is the cross-cutting instrumentation layer of the repo:

* :mod:`repro.obs.recorder` — a low-overhead per-rank **flight recorder**
  (preallocated ring buffer of span/instant/counter/flow events stamped
  with ``perf_counter_ns``; drop-oldest with a dropped-events counter;
  near-zero cost when no recorder is bound).
* :mod:`repro.obs.metrics` — counters, gauges and log-bucketed streaming
  histograms with cross-rank merge plus the per-rank straggler
  attribution report.
* :mod:`repro.obs.trace` — Chrome trace-event JSON export (loadable in
  Perfetto / ``chrome://tracing``) and a structural schema validator.
* :mod:`repro.obs.collect` — cross-rank collection over the comm fabric:
  clock-offset estimation (ping-pong midpoint) and trace-buffer shipment
  to rank 0 on the ``telemetry`` tag region.
* :mod:`repro.obs.tracecmd` — the ``python -m repro trace`` entry point:
  a short instrumented training run, collected and exported.

The hot paths (communicator send/recv, collective phases, the fused
exchange, the trainer step, the serving tier) consult
:func:`repro.obs.recorder.current` — a thread-local lookup returning
``None`` unless :func:`repro.obs.recorder.bind` installed a recorder on
that thread — so instrumentation costs one attribute lookup per site
when tracing is off.
"""

from repro.obs.recorder import (
    DEFAULT_CAPACITY,
    FlightRecorder,
    bind,
    current,
    instant,
    span,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    LogHistogram,
    MetricsRegistry,
    merge_snapshots,
    straggler_attribution,
)
from repro.obs.trace import (
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.collect import (
    estimate_clock_offsets,
    gather_traces,
    telemetry_round_trip,
)

__all__ = [
    "DEFAULT_CAPACITY",
    "FlightRecorder",
    "bind",
    "current",
    "instant",
    "span",
    "Counter",
    "Gauge",
    "LogHistogram",
    "MetricsRegistry",
    "merge_snapshots",
    "straggler_attribution",
    "to_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
    "estimate_clock_offsets",
    "gather_traces",
    "telemetry_round_trip",
]
