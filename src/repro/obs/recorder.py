"""Per-rank flight recorder: a preallocated ring buffer of trace events.

Design constraints, in order:

1. **Near-zero cost when disabled.**  Every instrumentation site calls
   :func:`current`, a thread-local attribute lookup that returns ``None``
   unless :func:`bind` installed a recorder on that thread.  No recorder
   bound → one function call and one ``getattr`` per site, no
   allocation, no branch on module state.
2. **Bounded memory when enabled.**  Events land in a list preallocated
   to ``capacity`` slots; once full, the newest event overwrites the
   oldest (**drop-oldest**) and ``dropped`` counts every overwritten
   event, so a truncated trace is always detectable.
3. **Monotonic timestamps.**  Events are stamped with
   :func:`time.perf_counter_ns` (``CLOCK_MONOTONIC``), never
   ``time.time()`` — wall clocks step and smear, which would shear span
   nesting.  Cross-process alignment is the collection layer's job
   (:mod:`repro.obs.collect` estimates per-process offsets).

Threading model
---------------
A recorder belongs to one *rank* but may receive events from several of
that rank's threads (the partial-collective progress thread, the serving
dispatcher/collector); a small lock serialises appends and a per-thread
id is recorded so the exporter can reconstruct per-thread tracks.
Binding is **thread-local** on purpose: the thread backend runs several
ranks inside one process, and a process-global recorder would attribute
their events to whichever rank bound last.  Helper threads therefore
re-``bind`` the recorder captured by their owning rank at construction
time (see e.g. ``PartialAllreduce`` and the serving frontend).

Event kinds mirror the Chrome trace-event phases they export to
(:mod:`repro.obs.trace`): ``"X"`` complete spans, ``"i"`` instants,
``"C"`` counters, ``"s"``/``"f"`` flow start/finish (used to draw
send→recv arrows between rank tracks).
"""

from __future__ import annotations

import threading
from time import perf_counter_ns
from typing import Any, Dict, List, Optional, Tuple

__all__ = [
    "DEFAULT_CAPACITY",
    "FlightRecorder",
    "bind",
    "current",
    "span",
    "instant",
    "counter",
    "flow_id",
    "payload_nbytes",
    "record_send",
    "record_recv",
]

#: Default ring capacity: 64Ki events ≈ a few MB of tuples — enough for
#: thousands of training steps at ~tens of events per step.
DEFAULT_CAPACITY = 65536

# Event kinds (chosen to match the Chrome trace-event "ph" field so the
# exporter does no translation).
KIND_SPAN = "X"
KIND_INSTANT = "i"
KIND_COUNTER = "C"
KIND_FLOW_OUT = "s"
KIND_FLOW_IN = "f"

_tls = threading.local()


def bind(recorder: Optional["FlightRecorder"]) -> Optional["FlightRecorder"]:
    """Install ``recorder`` as this thread's recorder (``None`` clears)."""
    _tls.recorder = recorder
    return recorder


def current() -> Optional["FlightRecorder"]:
    """The recorder bound to the calling thread, or ``None``."""
    return getattr(_tls, "recorder", None)


class _NullSpan:
    """Shared no-op context manager returned when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """Context manager that appends one complete ("X") event on exit."""

    __slots__ = ("_recorder", "_name", "_cat", "_args", "_t0")

    def __init__(
        self,
        recorder: "FlightRecorder",
        name: str,
        cat: str,
        args: Optional[Dict[str, Any]],
    ) -> None:
        self._recorder = recorder
        self._name = name
        self._cat = cat
        self._args = args

    def __enter__(self) -> "_Span":
        self._t0 = perf_counter_ns()
        return self

    def __exit__(self, *exc: Any) -> bool:
        t1 = perf_counter_ns()
        self._recorder._append(
            KIND_SPAN, self._name, self._cat, self._t0, t1 - self._t0, self._args
        )
        return False


class FlightRecorder:
    """Fixed-capacity ring buffer of trace events for one rank."""

    def __init__(self, rank: int = 0, capacity: int = DEFAULT_CAPACITY) -> None:
        capacity = int(capacity)
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.rank = int(rank)
        self.capacity = capacity
        # Preallocated ring: _total counts appends ever, the slot is
        # _total % capacity, and once _total exceeds capacity every
        # append evicts the oldest surviving event.
        self._ring: List[Optional[Tuple]] = [None] * capacity
        self._total = 0
        self.dropped = 0
        self._lock = threading.Lock()
        self._thread_names: Dict[int, str] = {}

    # ---- core append -------------------------------------------------
    def _append(
        self,
        kind: str,
        name: str,
        cat: str,
        ts_ns: int,
        dur_ns: int,
        args: Optional[Dict[str, Any]],
    ) -> None:
        ident = threading.get_ident()
        with self._lock:
            if ident not in self._thread_names:
                self._thread_names[ident] = threading.current_thread().name
            if self._total >= self.capacity:
                self.dropped += 1
            self._ring[self._total % self.capacity] = (
                kind, name, cat, ts_ns, dur_ns, args, ident,
            )
            self._total += 1

    # ---- recording API ----------------------------------------------
    def span(self, name: str, cat: str = "", **args: Any) -> _Span:
        """Context manager measuring a complete span."""
        return _Span(self, name, cat, args or None)

    def instant(self, name: str, cat: str = "", **args: Any) -> None:
        self._append(KIND_INSTANT, name, cat, perf_counter_ns(), 0, args or None)

    def counter(self, name: str, value: float, cat: str = "metrics") -> None:
        self._append(
            KIND_COUNTER, name, cat, perf_counter_ns(), 0, {"value": float(value)}
        )

    def flow_out(self, flow: int, ts_ns: Optional[int] = None, cat: str = "comm") -> None:
        self._append(
            KIND_FLOW_OUT, "msg", cat,
            perf_counter_ns() if ts_ns is None else ts_ns, 0, {"id": int(flow)},
        )

    def flow_in(self, flow: int, ts_ns: Optional[int] = None, cat: str = "comm") -> None:
        self._append(
            KIND_FLOW_IN, "msg", cat,
            perf_counter_ns() if ts_ns is None else ts_ns, 0, {"id": int(flow)},
        )

    # ---- inspection / export ----------------------------------------
    def __len__(self) -> int:
        return min(self._total, self.capacity)

    @property
    def total_recorded(self) -> int:
        """Events ever appended, including those since overwritten."""
        return self._total

    def events(self) -> List[Tuple]:
        """Surviving events in append order (oldest first)."""
        with self._lock:
            if self._total <= self.capacity:
                return [ev for ev in self._ring[: self._total]]
            head = self._total % self.capacity
            return [ev for ev in self._ring[head:] + self._ring[:head]]

    def clear(self) -> None:
        with self._lock:
            self._ring = [None] * self.capacity
            self._total = 0
            self.dropped = 0
            self._thread_names.clear()

    def dump(self) -> Dict[str, Any]:
        """Plain-data snapshot, picklable for shipment over the fabric."""
        events = self.events()
        with self._lock:
            return {
                "rank": self.rank,
                "capacity": self.capacity,
                "dropped": self.dropped,
                "total_recorded": self._total,
                "threads": dict(self._thread_names),
                "events": [list(ev) for ev in events],
            }


# ---- module-level conveniences (no-ops when no recorder is bound) -----
def span(name: str, cat: str = "", **args: Any):
    """Span on the current thread's recorder; no-op context if unbound."""
    rec = getattr(_tls, "recorder", None)
    if rec is None:
        return _NULL_SPAN
    return _Span(rec, name, cat, args or None)


def instant(name: str, cat: str = "", **args: Any) -> None:
    rec = getattr(_tls, "recorder", None)
    if rec is not None:
        rec.instant(name, cat, **args)


def counter(name: str, value: float, cat: str = "metrics") -> None:
    rec = getattr(_tls, "recorder", None)
    if rec is not None:
        rec.counter(name, value, cat)


# ---- comm-path helpers -----------------------------------------------
def flow_id(channel: str, source: int, dest: int, tag: int) -> int:
    """Stable id linking a send event to its matching recv event.

    Both endpoints can compute it locally — no extra bytes on the wire —
    because a message is identified by ``(channel, source, dest, tag)``
    on this substrate.  Tags are unique per logical message within a run
    for the collective/serving schedules (epoch/round/chunk or sequence
    numbers are minted into them), so collisions only arise for
    intentionally reused tags and merely merge those arrows in the UI.
    """
    return hash((channel, source, dest, tag)) & 0x7FFFFFFFFFFFFFFF


def payload_nbytes(payload: Any) -> int:
    """Best-effort payload size (ndarray ``nbytes``; 0 for other types)."""
    nbytes = getattr(payload, "nbytes", 0)
    return int(nbytes) if isinstance(nbytes, int) else 0


def record_send(
    rec: FlightRecorder,
    channel: str,
    source: int,
    dest: int,
    tag: int,
    nbytes: int,
    t0_ns: int,
) -> None:
    """One send = a short "send" span over the deliver + a flow start."""
    t1 = perf_counter_ns()
    rec._append(
        KIND_SPAN, "send", "comm", t0_ns, t1 - t0_ns,
        {"peer": dest, "tag": tag, "nbytes": nbytes},
    )
    rec.flow_out(flow_id(channel, source, dest, tag), ts_ns=t0_ns)


def record_recv(
    rec: FlightRecorder,
    channel: str,
    source: int,
    dest: int,
    tag: int,
    nbytes: int,
    t0_ns: int,
) -> None:
    """One recv = a "recv" span covering the mailbox wait + a flow end."""
    t1 = perf_counter_ns()
    rec._append(
        KIND_SPAN, "recv", "comm", t0_ns, t1 - t0_ns,
        {"peer": source, "tag": tag, "nbytes": nbytes},
    )
    rec.flow_in(flow_id(channel, source, dest, tag), ts_ns=t1)
