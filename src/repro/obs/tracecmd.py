"""``python -m repro trace``: run a small traced training job, export Perfetto JSON.

The command launches the hyperplane-regression workload (the Fig. 10
model at test scale) on any registered comm backend with a
:class:`~repro.obs.recorder.FlightRecorder` bound on every rank, then:

1. ships each rank's event buffer to rank 0 over the ``telemetry`` tag
   region (:func:`repro.obs.collect.gather_traces`), aligning the ranks'
   monotonic clocks with ping-pong midpoint offset estimation;
2. merges the per-rank metric registries
   (:func:`repro.obs.metrics.merge_snapshots`);
3. folds per-step timings into the straggler-attribution report
   (:func:`repro.obs.metrics.straggler_attribution`);
4. writes one Chrome trace-event JSON file loadable in Perfetto
   (https://ui.perfetto.dev) or ``chrome://tracing``, with one process
   track per rank and send→recv flow arrows between them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.obs import recorder as _obs
from repro.obs.collect import gather_traces
from repro.obs.metrics import MetricsRegistry, merge_snapshots, straggler_attribution
from repro.obs.recorder import DEFAULT_CAPACITY, FlightRecorder
from repro.obs.trace import to_chrome_trace, write_chrome_trace


@dataclass
class TraceConfig:
    """Knobs of the traced demonstration run."""

    world_size: int = 4
    steps: int = 8
    mode: str = "sync"  # "sync", "solo", "majority" or "quorum"
    sharding: str = "none"  # "none" or "zero1" (sync mode only)
    fusion_buckets: int = 2
    input_dim: int = 64
    global_batch_size: int = 32
    learning_rate: float = 0.05
    seed: int = 0
    capacity: int = DEFAULT_CAPACITY
    sync_rounds: int = 4

    def validate(self) -> None:
        if self.world_size < 1:
            raise ValueError(f"world_size must be >= 1, got {self.world_size}")
        if self.steps < 1:
            raise ValueError(f"steps must be >= 1, got {self.steps}")
        if self.capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {self.capacity}")
        if self.sharding not in ("none", "zero1"):
            raise ValueError(
                f"sharding must be 'none' or 'zero1', got {self.sharding!r}"
            )
        if self.sharding == "zero1" and self.mode != "sync":
            raise ValueError(
                f"sharding='zero1' requires mode='sync', got {self.mode!r}"
            )


def _trace_rank_main(comm, config: TraceConfig) -> Optional[Dict[str, Any]]:
    """SPMD entry: train a few traced steps, collect everything on rank 0."""
    from repro.data.hyperplane import HyperplaneDataset
    from repro.data.loader import ShardedLoader
    from repro.nn.losses import MSELoss
    from repro.nn.models.mlp import HyperplaneMLP
    from repro.nn.optim import MomentumSGD
    from repro.training.distributed_sgd import DistributedSGD
    from repro.training.exchange import build_exchange

    rank = comm.rank
    recorder = FlightRecorder(rank=rank, capacity=config.capacity)
    _obs.bind(recorder)
    registry = MetricsRegistry()
    step_timings: List[Dict[str, float]] = []
    try:
        model = HyperplaneMLP(config.input_dim, seed=config.seed)
        exchange = build_exchange(
            comm,
            max(1, model.num_parameters()),
            config.mode,
            fusion_buckets=config.fusion_buckets,
            seed=config.seed + 777,
            sharding=config.sharding,
        )
        # Momentum (not plain SGD) so the optimizer actually carries
        # per-parameter state and the state-bytes gauge has a story to
        # tell: replicated under sharding="none", cut P-fold under zero1.
        optimizer = MomentumSGD(model, config.learning_rate)
        sgd = DistributedSGD(
            model,
            optimizer,
            exchange,
            MSELoss(),
            world_size=comm.size,
            classification=False,
        )
        # The loader shards the global batch evenly, so round it to a
        # multiple of the world size (at least one example per rank).
        global_batch = max(1, config.global_batch_size // comm.size) * comm.size
        dataset = HyperplaneDataset(
            num_examples=max(global_batch * config.steps, 64),
            input_dim=config.input_dim,
            noise_std=0.5,
            seed=config.seed,
        )
        loader = ShardedLoader(
            dataset,
            global_batch,
            rank=rank,
            world_size=comm.size,
            seed=config.seed,
        )
        steps_hist = registry.histogram("step-loss")
        compute_hist = registry.histogram("step-compute-s")
        wait_hist = registry.histogram("step-exchange-wait-s")
        done = 0
        epoch = 0
        while done < config.steps:
            for batch in loader.epoch_batches(epoch):
                stats = sgd.step(batch)
                registry.counter("steps").inc()
                steps_hist.push(abs(stats.loss))
                compute_hist.push(stats.compute_time)
                wait_hist.push(stats.exchange_wait)
                registry.gauge("num-active").set(stats.num_active)
                wait = (
                    sum(stats.bucket_waits)
                    if stats.bucket_waits
                    else stats.exchange_wait
                )
                step_timings.append(
                    {
                        "compute_s": stats.compute_time,
                        "wait_s": wait,
                        "exchange_s": stats.exchange_wait,
                    }
                )
                done += 1
                if done >= config.steps:
                    break
            epoch += 1
        registry.gauge("repro_optimizer_state_bytes").set(optimizer.state_bytes())
        sgd.close()
        # All training traffic is done on every rank before anyone dumps
        # its buffer, so the traces cover the same (whole) run.
        comm.barrier()
    finally:
        payload = {
            "trace": recorder.dump(),
            "metrics": registry.snapshot(),
            "steps": step_timings,
        }
        _obs.bind(None)

    collected = gather_traces(comm, payload, rounds=config.sync_rounds)
    if collected is None:
        return None
    payloads, offsets = collected
    return {
        "dumps": [p["trace"] for p in payloads],
        "snapshots": [p["metrics"] for p in payloads],
        "per_rank_steps": [p["steps"] for p in payloads],
        "clock_offsets_ns": offsets,
    }


def run_trace(
    config: Optional[TraceConfig] = None,
    backend: Optional[str] = None,
    out: str = "trace.json",
    timeout: Optional[float] = 300.0,
) -> Dict[str, Any]:
    """Run the traced job and write the Chrome trace; returns a summary."""
    from repro.comm.backend import launch

    config = config or TraceConfig()
    config.validate()
    results = launch(
        _trace_rank_main,
        config.world_size,
        config,
        backend=backend,
        timeout=timeout,
    )
    collected = results[0]
    trace = to_chrome_trace(
        collected["dumps"],
        clock_offsets_ns=collected["clock_offsets_ns"],
        metadata={
            "mode": config.mode,
            "steps": config.steps,
            "backend": backend or "default",
        },
    )
    write_chrome_trace(out, trace)
    merged = merge_snapshots(collected["snapshots"])
    straggler = straggler_attribution(collected["per_rank_steps"])
    state_bytes = [
        int(snapshot.get("repro_optimizer_state_bytes", {}).get("value", 0))
        for snapshot in collected["snapshots"]
    ]
    return {
        "out": out,
        "world_size": config.world_size,
        "sharding": config.sharding,
        "optimizer_state_bytes": state_bytes,
        "events": len(trace["traceEvents"]),
        "dropped_events": trace["otherData"]["dropped_events"],
        "clock_offsets_ns": collected["clock_offsets_ns"],
        "metrics": merged,
        "straggler": straggler,
    }


def format_summary(summary: Dict[str, Any]) -> str:
    """Human-readable report of one trace run (used by the CLI)."""
    lines = [
        "trace report",
        f"  wrote      : {summary['out']} "
        f"({summary['events']} events, "
        f"{sum(summary['dropped_events'].values())} dropped) "
        "- load in https://ui.perfetto.dev",
        f"  ranks      : {summary['world_size']}, clock offsets "
        + ", ".join(
            f"r{rank}={ns} ns"
            for rank, ns in sorted(summary["clock_offsets_ns"].items())
        ),
    ]
    for record in summary["straggler"]:
        lines.append(
            f"  rank {record['rank']:>3}   : "
            f"{100 * record['compute_share']:5.1f}% compute, "
            f"{100 * record['wait_share']:5.1f}% wait, "
            f"{100 * record['wire_share']:5.1f}% wire "
            f"over {record['steps']} step(s)"
        )
    state_bytes = summary.get("optimizer_state_bytes")
    if state_bytes:
        per_rank = ", ".join(
            f"r{rank}={nbytes}" for rank, nbytes in enumerate(state_bytes)
        )
        lines.append(
            f"  opt state  : {per_rank} bytes "
            f"(sharding={summary.get('sharding', 'none')})"
        )
    steps = summary["metrics"].get("steps", {}).get("value")
    if steps is not None:
        lines.append(f"  steps      : {int(steps)} across all ranks")
    wait = summary["metrics"].get("step-exchange-wait-s")
    if wait and wait.get("count"):
        lines.append(
            f"  exch wait  : p50 {1e3 * wait['p50']:.3f} ms, "
            f"p99 {1e3 * wait['p99']:.3f} ms over {wait['count']} step(s)"
        )
    return "\n".join(lines)
