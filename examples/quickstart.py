#!/usr/bin/env python
"""Quickstart: eager-SGD vs synchronous SGD in a few dozen lines.

This example trains a small classifier with four rank threads under an
injected load imbalance (one random rank delayed by 300 ms per step, as in
Section 6.2 of the paper) and compares three gradient exchanges:

* synchronous SGD (Deep500-style ordered allreduce),
* eager-SGD with solo allreduce (wait-free),
* eager-SGD with majority allreduce (statistical quorum).

Run:  python examples/quickstart.py
"""

from repro.data import cifar10_like
from repro.experiments.report import format_table
from repro.imbalance import FixedCostModel, RandomSubsetDelay
from repro.nn.losses import SoftmaxCrossEntropyLoss
from repro.nn.models import MLPClassifier
from repro.training import TrainingConfig, train_distributed


def main() -> None:
    # A synthetic 10-class image dataset (CIFAR-like structure).
    dataset = cifar10_like(num_examples=768, image_size=4, signal=3.0, seed=0)
    train, val = dataset.split(validation_fraction=0.25, seed=0)

    # Every rank builds the same model replica (same seed).
    def model_factory():
        return MLPClassifier(input_dim=3 * 4 * 4, hidden_dims=(32,), num_classes=10, seed=7)

    rows = []
    for mode in ("sync", "solo", "majority"):
        config = TrainingConfig(
            world_size=4,
            epochs=3,
            global_batch_size=64,
            mode=mode,                       # "sync" or a partial collective
            learning_rate=0.1,
            optimizer="momentum",
            # Simulated per-step compute cost + injected system imbalance:
            cost_model=FixedCostModel(0.2),
            delay_injector=RandomSubsetDelay(num_delayed=1, delay_ms=300.0, seed=1),
            # Sleep a scaled-down version of the simulated times so the
            # partial collectives see realistic arrival orders.
            time_scale=0.002,
            model_sync_period_epochs=2,
            seed=0,
        )
        result = train_distributed(
            model_factory,
            train,
            SoftmaxCrossEntropyLoss(),
            config,
            eval_dataset=val,
        )
        rows.append(
            (
                config.describe(),
                round(result.total_sim_time, 1),
                round(result.throughput, 2),
                round(result.final_epoch.eval_top1, 3),
                round(result.final_epoch.mean_num_active, 2),
            )
        )

    print(
        format_table(
            [
                "variant",
                "projected training time (s)",
                "throughput (steps/s)",
                "final top-1",
                "mean fresh contributors",
            ],
            rows,
            title="Quickstart: synch-SGD vs eager-SGD under 300 ms injected imbalance",
        )
    )
    print(
        "\nEager-SGD finishes earlier because fast ranks never wait for the "
        "delayed rank; majority allreduce keeps more fresh gradients per step "
        "than solo."
    )


if __name__ == "__main__":
    main()
