"""Two launcher processes contribute ranks to one world over a seed.

This is the multi-launcher shape of the ``tcp`` backend, runnable on a
single machine: launcher A spawns global ranks 0-1 (and serves the seed
because it owns rank 0), launcher B spawns ranks 2-3 and dials the same
seed.  The four ranks form one full socket mesh and run a collective
across the launcher boundary.  Across real machines the recipe is the
same — give every launcher the same routable ``seed_addr`` and a
``bind_host`` its peers can reach.

Run it (CI's multihost-smoke job does)::

    PYTHONPATH=src python examples/multihost_seed_rendezvous.py

The script exits 0 when both launchers saw the correct allreduce result
and each returned results only for the ranks it owns.
"""

import subprocess
import sys

import numpy as np

WORLD_SIZE = 4
SEED_ADDR = "127.0.0.1:29517"
LAUNCHERS = ("0,1", "2,3")


def worker(comm):
    from repro.collectives.sync import allreduce

    out = allreduce(comm, np.full(8, comm.rank + 1.0))
    expected = WORLD_SIZE * (WORLD_SIZE + 1) / 2
    assert np.allclose(out, expected), (comm.rank, out)
    return comm.rank


def run_launcher(local_ranks):
    from repro.comm import launch

    results = launch(
        worker, WORLD_SIZE, backend="tcp",
        backend_opts={"seed_addr": SEED_ADDR, "local_ranks": local_ranks},
        timeout=90,
    )
    # A launcher gets real results only for its own ranks; the other
    # launcher's positions are None.
    for rank in range(WORLD_SIZE):
        if rank in local_ranks:
            assert results[rank] == rank, results
        else:
            assert results[rank] is None, results
    print(f"launcher of ranks {local_ranks}: world of {WORLD_SIZE} ok")


def main():
    procs = [
        subprocess.Popen([sys.executable, __file__, spec])
        for spec in LAUNCHERS
    ]
    codes = [p.wait(timeout=180) for p in procs]
    if codes != [0] * len(LAUNCHERS):
        raise SystemExit(f"launcher exit codes {codes}")
    print(f"two launchers joined one world of {WORLD_SIZE} via {SEED_ADDR}")


if __name__ == "__main__":
    if len(sys.argv) > 1:
        run_launcher([int(r) for r in sys.argv[1].split(",")])
    else:
        main()
