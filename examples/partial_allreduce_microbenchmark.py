#!/usr/bin/env python
"""Microbenchmark of the partial collectives (paper Fig. 8 / Fig. 9).

Shows both views of the microbenchmark:

1. the paper-scale sweep (32 processes, 64 B - 4 MB, linear 1 ms/rank
   skew) through the calibrated latency model, reporting average latency
   and the Number of Active Processes per operation; and
2. a direct measurement of the thread-backed solo / majority / synchronous
   allreduce at a reduced scale, demonstrating the same ordering with the
   real implementation.

Run:  python examples/partial_allreduce_microbenchmark.py
"""

from repro.experiments import fig9_microbenchmark


def main() -> None:
    model_result = fig9_microbenchmark.run(world_size=32, iterations=64, skew_step_ms=1.0)
    model_result.functional_rows = fig9_microbenchmark.run_functional(
        world_size=8, iterations=8, skew_step_ms=6.0, message_elements=1024
    )
    print(fig9_microbenchmark.report(model_result))


if __name__ == "__main__":
    main()
