#!/usr/bin/env python
"""Video classification with inherent load imbalance (paper Section 6.3).

This example reproduces the structure of the paper's UCF101 case study at
laptop scale: an LSTM classifier over synthetic per-frame feature
sequences whose length distribution matches UCF101 (29-1,776 frames,
median 167), independent per-rank length-bucketed input pipelines, and a
comparison of Horovod-style synchronous SGD against eager-SGD with solo
and majority allreduce.

Run:  python examples/video_classification_ucf101.py
"""

from repro.data import VideoFeatureDataset
from repro.experiments.report import format_table
from repro.imbalance import lstm_ucf101_cost_model
from repro.nn.losses import SoftmaxCrossEntropyLoss
from repro.nn.models import SequenceLSTMClassifier
from repro.training import TrainingConfig, train_distributed


def main() -> None:
    world_size = 4
    global_batch = 32
    dataset = VideoFeatureDataset(
        num_videos=400,
        feature_dim=16,
        num_classes=8,
        length_scale=0.05,   # shorten sequences for CPU, keep the relative spread
        signal=1.5,
        seed=0,
    )
    print(
        "video length distribution (frames):",
        f"min={dataset.lengths.min()}, median={int(sorted(dataset.lengths)[len(dataset)//2])},"
        f" max={dataset.lengths.max()}",
    )

    def model_factory():
        return SequenceLSTMClassifier(
            feature_dim=16, hidden_dim=24, num_classes=8, seed=3
        )

    rows = []
    results = {}
    for mode in ("sync", "solo", "majority"):
        config = TrainingConfig(
            world_size=world_size,
            epochs=3,
            global_batch_size=global_batch,
            mode=mode,
            sync_style="horovod",
            learning_rate=0.1,
            optimizer="momentum",
            # The cost of a batch is proportional to its total frame count
            # (calibrated against Fig. 2b of the paper).
            cost_model=lstm_ucf101_cost_model(batch_size=global_batch // world_size),
            # Bucketed per-rank pipelines turn the length spread into
            # inter-rank imbalance — the phenomenon eager-SGD targets.
            bucket_by_length=True,
            time_scale=0.002,
            model_sync_period_epochs=2,
            seed=0,
        )
        result = train_distributed(
            model_factory, dataset, SoftmaxCrossEntropyLoss(), config
        )
        results[mode] = result
        rows.append(
            (
                mode,
                round(result.total_sim_time, 1),
                round(result.final_epoch.train_top1, 3),
                round(result.final_epoch.mean_num_active, 2),
                result.rank_summaries[0].max_staleness,
            )
        )

    print()
    print(
        format_table(
            [
                "exchange",
                "projected training time (s)",
                "final train top-1",
                "mean fresh contributors",
                "max staleness (rank 0)",
            ],
            rows,
            title="LSTM video classification under inherent load imbalance",
        )
    )
    sync_time = results["sync"].total_sim_time
    for mode in ("solo", "majority"):
        print(f"speedup of eager-SGD ({mode}) over synch-SGD: "
              f"{sync_time / results[mode].total_sim_time:.2f}x")


if __name__ == "__main__":
    main()
