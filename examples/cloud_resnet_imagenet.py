#!/usr/bin/env python
"""Cloud-style system imbalance: ResNet on an ImageNet-like dataset.

Mirrors Section 6.2.2 of the paper at laptop scale: the per-batch data
cost is constant (image classification), but a few randomly chosen ranks
are delayed every step — the behaviour of multi-tenant cloud machines
(Fig. 4).  The example compares Deep500-style and Horovod-style
synchronous SGD with eager-SGD (solo) and reports throughput, accuracy
and the number of fresh contributors per step.

Run:  python examples/cloud_resnet_imagenet.py
"""

from repro.data import imagenet_like
from repro.experiments.report import format_table
from repro.imbalance import RandomSubsetDelay, resnet50_cloud_cost_model
from repro.nn.losses import SoftmaxCrossEntropyLoss
from repro.nn.models import resnet_imagenet_lite
from repro.training import TrainingConfig, train_distributed


def main() -> None:
    dataset = imagenet_like(num_examples=1200, num_classes=12, image_size=8, seed=0)
    train, val = dataset.split(validation_fraction=0.2, seed=0)

    def model_factory():
        return resnet_imagenet_lite(num_classes=12, width=6, blocks_per_stage=1, seed=5)

    variants = [
        ("synch-SGD (Deep500)", dict(mode="sync", sync_style="deep500")),
        ("synch-SGD (Horovod)", dict(mode="sync", sync_style="horovod")),
        ("eager-SGD (solo)", dict(mode="solo")),
    ]
    rows = []
    baseline_time = None
    for name, overrides in variants:
        config = TrainingConfig(
            world_size=4,
            epochs=2,
            global_batch_size=64,
            learning_rate=0.05,
            optimizer="momentum",
            cost_model=resnet50_cloud_cost_model(),
            delay_injector=RandomSubsetDelay(num_delayed=1, delay_ms=460.0, seed=2),
            time_scale=0.001,
            model_sync_period_epochs=2,
            seed=0,
            **overrides,
        )
        result = train_distributed(
            model_factory, train, SoftmaxCrossEntropyLoss(), config, eval_dataset=val
        )
        if baseline_time is None:
            baseline_time = result.total_sim_time
        rows.append(
            (
                name,
                round(result.total_sim_time, 1),
                round(baseline_time / result.total_sim_time, 2),
                round(result.final_epoch.eval_top1, 3),
                round(result.final_epoch.eval_top5, 3),
                round(result.final_epoch.mean_num_active, 2),
            )
        )

    print(
        format_table(
            [
                "variant",
                "projected time (s)",
                "speedup vs Deep500",
                "top-1",
                "top-5",
                "fresh contributors",
            ],
            rows,
            title="ResNet / ImageNet-like training with 460 ms cloud-style stragglers",
        )
    )


if __name__ == "__main__":
    main()
