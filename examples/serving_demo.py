#!/usr/bin/env python
"""Serve-while-train: online inference riding the training fabric.

One world, three roles on the same comm backend: a trainer rank runs
distributed SGD on the hyperplane workload and publishes its weights
every few steps; two replica ranks serve inference with dynamic
batching, hot-swapping to each published parameter set between batches;
the frontend rank batches incoming requests under a latency SLO and
routes them to the least-loaded replica.

The script uses the interactive :class:`~repro.serving.InferenceServer`
handle (thread backend) so the client loop below can watch the served
model version advance live — the same request stream keeps completing
while the weights underneath it change.

Run:  python examples/serving_demo.py
"""

import numpy as np

from repro.serving import InferenceServer, ServingConfig


def main() -> None:
    config = ServingConfig(
        replicas=2,
        train_ranks=1,          # co-scheduled trainer publishing weights
        input_dim=32,
        max_batch_size=8,
        max_queue_delay_s=0.002,  # SLO knob: hold a partial batch <= 2 ms
        train_steps=300,
        train_batch_size=16,
        publish_every_steps=10,  # hot-swap period, in trainer steps
    )
    print(config.describe())
    print()

    rng = np.random.default_rng(0)
    transitions = []
    last_version = None
    with InferenceServer(config) as server:
        for index in range(400):
            output, version = server.infer(rng.standard_normal(config.input_dim))
            if version != last_version:
                transitions.append(version)
                print(
                    f"request {index:>4}: now served by model version "
                    f"{version:>4} (prediction {output[0]:+.4f})"
                )
                last_version = version
            if version >= config.train_steps:
                break
    report = server.report

    print()
    print(f"served versions        : {report.versions_served}")
    print(f"completed requests     : {report.frontend['completed_requests']}")
    print(f"hot swaps applied      : "
          f"{sum(r['swaps_applied'] for r in report.replicas)}")
    print(f"final training loss    : {report.trainers[0]['final_loss']:.4f}")
    if len(transitions) > 1:
        print("\nThe served version advanced mid-stream without dropping a "
              "request — that is the whole trick.")


if __name__ == "__main__":
    main()
